package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/data"
)

// Textual syntaxes for construction patterns and predicate expressions.
//
// Construction (the MAKE side of YATL, Figure 4's Tree argument):
//
//	doc[ *artwork($t, $c) := work[ title: $t, artist: $a, owners[ *$o ],
//	                               more: $fields ] ]
//	artists[ *($a) artist[ name: $a, *($t) title: $t ] ]
//	owner: &person($o)                 — a reference to a Skolem-built tree
//
// Expressions (WHERE clauses, Select predicates):
//
//	$y > 1800 AND $c = $a AND contains($w, "Impressionist")

type atok struct {
	kind string // name,var,str,num,punct,eof
	text string
	pos  int
}

func alex(src string) ([]atok, error) {
	var toks []atok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ':' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, atok{"punct", ":=", i})
			i += 2
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, atok{"punct", "!=", i})
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, atok{"punct", "<=", i})
			i += 2
		case c == '>' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, atok{"punct", ">=", i})
			i += 2
		case strings.IndexByte("[]():,.~&*+-/<>=%", c) >= 0:
			toks = append(toks, atok{"punct", string(c), i})
			i++
		case c == '$':
			start := i
			i++
			for i < len(src) && (isWordByte(src[i]) || src[i] == '\'') {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("parse: empty variable at offset %d", start)
			}
			toks = append(toks, atok{"var", src[start:i], start})
		case c == '"':
			start := i
			i++
			var b strings.Builder
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' && i+1 < len(src) {
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("parse: unterminated string at offset %d", start)
			}
			i++
			toks = append(toks, atok{"str", b.String(), start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			toks = append(toks, atok{"num", src[start:i], start})
		case isWordStartByte(c):
			start := i
			for i < len(src) && (isWordByte(src[i]) || src[i] == '\'') {
				i++
			}
			toks = append(toks, atok{"name", src[start:i], start})
		default:
			return nil, fmt.Errorf("parse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, atok{"eof", "", i})
	return toks, nil
}

func isWordStartByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordByte(c byte) bool {
	return isWordStartByte(c) || c == '-' || (c >= '0' && c <= '9')
}

type aparser struct {
	toks []atok
	i    int
}

func (p *aparser) cur() atok { return p.toks[p.i] }

func (p *aparser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == "punct" && t.text == s
}

func (p *aparser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == "name" && strings.EqualFold(t.text, s)
}

func (p *aparser) eat(s string) error {
	if !p.isPunct(s) {
		return fmt.Errorf("parse: expected %q at offset %d, got %q", s, p.cur().pos, p.cur().text)
	}
	p.i++
	return nil
}

// ---------------------------------------------------------------------------
// Construction parser
// ---------------------------------------------------------------------------

// ParseCons parses a construction pattern.
func ParseCons(src string) (*Cons, error) {
	toks, err := alex(src)
	if err != nil {
		return nil, err
	}
	p := &aparser{toks: toks}
	c, err := p.cons()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("parse: trailing input at offset %d", p.cur().pos)
	}
	return c, nil
}

// MustParseCons is ParseCons panicking on error.
func MustParseCons(src string) *Cons {
	c, err := ParseCons(src)
	if err != nil {
		panic(err)
	}
	return c
}

func (p *aparser) cons() (*Cons, error) {
	c := &Cons{}
	// Skolem head: NAME ( vars ) :=
	if p.cur().kind == "name" && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].kind == "punct" && p.toks[p.i+1].text == "(" {
		name := p.cur().text
		p.i += 2
		args, err := p.varList()
		if err != nil {
			return nil, err
		}
		if err := p.eat(")"); err != nil {
			return nil, err
		}
		if err := p.eat(":="); err != nil {
			return nil, err
		}
		body, err := p.cons()
		if err != nil {
			return nil, err
		}
		body.Skolem = name
		body.SkolemArgs = args
		return body, nil
	}
	t := p.cur()
	switch {
	case p.isPunct("&"):
		p.i++
		n := p.cur()
		if n.kind != "name" {
			return nil, fmt.Errorf("parse: expected Skolem name after '&' at offset %d", n.pos)
		}
		p.i++
		if err := p.eat("("); err != nil {
			return nil, err
		}
		args, err := p.varList()
		if err != nil {
			return nil, err
		}
		if err := p.eat(")"); err != nil {
			return nil, err
		}
		c.RefTo = n.text
		c.RefArgs = args
		return c, nil
	case t.kind == "var":
		p.i++
		c.Var = t.text
		return c, nil
	case t.kind == "str":
		p.i++
		a := data.String(t.text)
		c.Const = &a
		return c, nil
	case t.kind == "num":
		p.i++
		a, err := parseNumAtom(t.text)
		if err != nil {
			return nil, fmt.Errorf("parse: %v at offset %d", err, t.pos)
		}
		c.Const = &a
		return c, nil
	case p.isPunct("~"):
		p.i++
		v := p.cur()
		if v.kind != "var" {
			return nil, fmt.Errorf("parse: expected variable after '~' at offset %d", v.pos)
		}
		p.i++
		c.LabelVar = v.text
	case t.kind == "name":
		p.i++
		c.Label = t.text
	default:
		return nil, fmt.Errorf("parse: unexpected %q at offset %d", t.text, t.pos)
	}
	// tail
	switch {
	case p.isPunct("["):
		p.i++
		for !p.isPunct("]") {
			it, err := p.consItem()
			if err != nil {
				return nil, err
			}
			c.Kids = append(c.Kids, it)
			if p.isPunct(",") {
				p.i++
				continue
			}
			break
		}
		if err := p.eat("]"); err != nil {
			return nil, err
		}
	case p.isPunct(":"):
		p.i++
		t := p.cur()
		// `label: $v` and `label: "const"` attach content directly.
		switch {
		case t.kind == "var":
			p.i++
			c.Var = t.text
		case t.kind == "str":
			p.i++
			a := data.String(t.text)
			c.Const = &a
		case t.kind == "num":
			p.i++
			a, err := parseNumAtom(t.text)
			if err != nil {
				return nil, fmt.Errorf("parse: %v at offset %d", err, t.pos)
			}
			c.Const = &a
		default:
			kid, err := p.cons()
			if err != nil {
				return nil, err
			}
			c.Kids = append(c.Kids, ConsItem{C: kid})
		}
	}
	return c, nil
}

func (p *aparser) consItem() (ConsItem, error) {
	it := ConsItem{}
	if p.isPunct("*") {
		p.i++
		it.Star = true
		if p.isPunct("(") {
			p.i++
			keys, err := p.varList()
			if err != nil {
				return it, err
			}
			if err := p.eat(")"); err != nil {
				return it, err
			}
			it.Keys = keys
		}
	}
	c, err := p.cons()
	if err != nil {
		return it, err
	}
	it.C = c
	return it, nil
}

func (p *aparser) varList() ([]string, error) {
	var out []string
	for {
		t := p.cur()
		if t.kind != "var" {
			if len(out) == 0 && p.isPunct(")") {
				return out, nil
			}
			return nil, fmt.Errorf("parse: expected variable at offset %d", t.pos)
		}
		out = append(out, t.text)
		p.i++
		if p.isPunct(",") {
			p.i++
			continue
		}
		return out, nil
	}
}

func parseNumAtom(text string) (data.Atom, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return data.Atom{}, fmt.Errorf("bad number %q", text)
		}
		return data.Float(f), nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return data.Atom{}, fmt.Errorf("bad number %q", text)
	}
	return data.Int(v), nil
}

// ---------------------------------------------------------------------------
// Expression parser
// ---------------------------------------------------------------------------

// ParseExpr parses a predicate/value expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := alex(src)
	if err != nil {
		return nil, err
	}
	p := &aparser{toks: toks}
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("parse: trailing input at offset %d", p.cur().pos)
	}
	return e, nil
}

// MustParseExpr is ParseExpr panicking on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *aparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		p.i++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *aparser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.i++
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func (p *aparser) notExpr() (Expr, error) {
	if p.isKeyword("NOT") {
		p.i++
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not{e}, nil
	}
	return p.cmpExpr()
}

func (p *aparser) cmpExpr() (Expr, error) {
	l, err := p.sumExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.isPunct(op) {
			p.i++
			r, err := p.sumExpr()
			if err != nil {
				return nil, err
			}
			return Cmp{Op: CmpOp(op), L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *aparser) sumExpr() (Expr, error) {
	l, err := p.termExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("+"):
			p.i++
			r, err := p.termExpr()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: OpAdd, L: l, R: r}
		case p.isPunct("-"):
			p.i++
			r, err := p.termExpr()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *aparser) termExpr() (Expr, error) {
	l, err := p.factorExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("*"):
			p.i++
			r, err := p.factorExpr()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: OpMul, L: l, R: r}
		case p.isPunct("/"):
			p.i++
			r, err := p.factorExpr()
			if err != nil {
				return nil, err
			}
			l = Arith{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *aparser) factorExpr() (Expr, error) {
	t := p.cur()
	switch {
	case p.isPunct("("):
		p.i++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.eat(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == "var":
		p.i++
		return Var{t.text}, nil
	case t.kind == "str":
		p.i++
		return Const{data.String(t.text)}, nil
	case t.kind == "num":
		p.i++
		a, err := parseNumAtom(t.text)
		if err != nil {
			return nil, fmt.Errorf("parse: %v at offset %d", err, t.pos)
		}
		return Const{a}, nil
	case p.isPunct("-"):
		p.i++
		e, err := p.factorExpr()
		if err != nil {
			return nil, err
		}
		return Arith{Op: OpSub, L: Const{data.Int(0)}, R: e}, nil
	case t.kind == "name" && strings.EqualFold(t.text, "true"):
		p.i++
		return Const{data.Bool(true)}, nil
	case t.kind == "name" && strings.EqualFold(t.text, "false"):
		p.i++
		return Const{data.Bool(false)}, nil
	case t.kind == "name":
		p.i++
		if err := p.eat("("); err != nil {
			return nil, fmt.Errorf("parse: expected '(' after function %s at offset %d", t.text, t.pos)
		}
		var args []Expr
		for !p.isPunct(")") {
			a, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.isPunct(",") {
				p.i++
			}
		}
		p.i++
		return Call{Name: t.text, Args: args}, nil
	default:
		return nil, fmt.Errorf("parse: unexpected %q at offset %d", t.text, t.pos)
	}
}
