// Streaming source capabilities. The materialized Source interface ships a
// whole document (Fetch) or a whole pushed result (Push) in one piece;
// sources that additionally implement the interfaces below can deliver the
// same data as a sequence of bounded chunks, which is what lets the
// streaming evaluator in internal/exec keep peak memory independent of
// result size and surface first rows before the wrapper has finished.
package algebra

import (
	"context"
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/obs"
	"repro/internal/tab"
)

// ForestCursor is a pull iterator over a document's trees: Next returns the
// next non-empty batch of trees, io.EOF at the end, any other error is
// terminal. Close is idempotent and cancels the underlying transfer.
type ForestCursor interface {
	Next() (data.Forest, error)
	Close() error
}

// StreamSource is a source that can ship a bound document incrementally
// instead of as one forest. Sources without it fall back to FetchContext /
// Fetch (the evaluator chunks the materialized forest itself).
type StreamSource interface {
	Source
	// FetchStream opens a tree stream over doc. The cursor honours ctx:
	// cancelling it aborts the transfer.
	FetchStream(ctx context.Context, doc string) (ForestCursor, error)
}

// PushStreamSource is a source that can evaluate a pushed plan and return
// its rows incrementally. Sources without it fall back to PushContext /
// Push (one-shot result, chunked mediator-side).
type PushStreamSource interface {
	Source
	// PushStream evaluates plan under params at the source and streams the
	// result rows. The cursor honours ctx: cancelling it aborts the
	// evaluation and the transfer.
	PushStream(ctx context.Context, plan Op, params map[string]tab.Cell) (tab.Cursor, error)
}

// sliceForestCursor streams an already-materialized forest in batches.
type sliceForestCursor struct {
	f     data.Forest
	chunk int
	pos   int
}

// NewSliceForestCursor chunks a materialized forest (batch trees per Next,
// DefaultStreamChunk trees when batch < 1). It is the fallback adapter used
// when a source cannot stream natively.
func NewSliceForestCursor(f data.Forest, batch int) ForestCursor {
	if batch < 1 {
		batch = tab.DefaultStreamChunk
	}
	return &sliceForestCursor{f: f, chunk: batch}
}

func (c *sliceForestCursor) Next() (data.Forest, error) {
	if c.pos >= len(c.f) {
		return nil, io.EOF
	}
	end := c.pos + c.chunk
	if end > len(c.f) {
		end = len(c.f)
	}
	out := c.f[c.pos:end:end]
	c.pos = end
	return out, nil
}

func (c *sliceForestCursor) Close() error {
	c.pos = len(c.f)
	return nil
}

// funcForestCursor adapts closures to ForestCursor.
type funcForestCursor struct {
	next   func() (data.Forest, error)
	close  func() error
	closed bool
}

func (c *funcForestCursor) Next() (data.Forest, error) {
	if c.closed {
		return nil, io.EOF
	}
	return c.next()
}

func (c *funcForestCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.close != nil {
		return c.close()
	}
	return nil
}

// InputStream resolves a named document as a tree stream when the exporting
// source supports it. The second return is false when the document is
// catalog-resident, unknown, or exported by a source without FetchStream —
// callers then fall back to the materialized Input. Accounting matches
// Input: one SourceFetches per opened stream, BytesShipped and Store
// registration per tree as batches arrive, retry counters drained when the
// stream ends.
func (c *Context) InputStream(name string) (ForestCursor, bool, error) {
	if _, ok := c.Catalog[name]; ok {
		return nil, false, nil
	}
	for _, s := range c.Sources {
		for _, d := range s.Documents() {
			if d != name {
				continue
			}
			ss, ok := s.(StreamSource)
			if !ok {
				return nil, false, nil
			}
			cctx := c.Ctx
			if cctx == nil {
				cctx = context.Background()
			}
			fc, err := ss.FetchStream(cctx, name)
			drainRetryStats(c, s)
			if err != nil {
				return nil, false, err
			}
			c.Stats.SourceFetches++
			traceCounts(c, obs.Counts{Fetches: 1})
			src := s
			done := false
			fin := func() {
				if !done {
					done = true
					drainRetryStats(c, src)
				}
			}
			return &funcForestCursor{
				next: func() (data.Forest, error) {
					f, err := fc.Next()
					if err != nil {
						fin()
						return nil, err
					}
					for _, n := range f {
						c.Stats.BytesShipped += int64(n.Size()) * 16
						c.Store.Register(n)
					}
					return f, nil
				},
				close: func() error {
					fin()
					return fc.Close()
				},
			}, true, nil
		}
	}
	return nil, false, nil
}

// StreamDoc opens a streaming evaluation of a document Bind: trees arrive
// in batches through InputStream and each batch is matched against the
// filter as it lands, so neither the document nor the binding table is ever
// whole in memory. Returns ok=false when b is not a document Bind or the
// document cannot stream; callers fall back to Eval.
func (b *Bind) StreamDoc(ctx *Context) (tab.Cursor, bool, error) {
	if b.Doc == "" {
		return nil, false, nil
	}
	fc, ok, err := ctx.InputStream(b.Doc)
	if err != nil || !ok {
		return nil, ok, err
	}
	f := b.F
	if f.Model == nil && ctx.Model != nil {
		f = &filter.Filter{Root: f.Root, Model: ctx.Model}
	}
	// One tree can bind many rows (a single-rooted document binds them
	// all): Rechunk restores the bounded-chunk invariant downstream.
	return tab.Rechunk(&tab.FuncCursor{
		Columns: b.Columns(),
		NextFn: func() (*tab.Tab, error) {
			forest, err := fc.Next()
			if err != nil {
				return nil, err
			}
			t := f.MatchForest(ctx.Store, forest)
			ctx.Stats.BindRows += t.Len()
			return t, nil
		},
		CloseFn: fc.Close,
	}, tab.DefaultStreamChunk), true, nil
}

// Stream opens a streaming evaluation of a pushed subplan when the
// connected source implements PushStreamSource. A result-cache hit is
// answered locally (chunked over the cached table); a miss streams from the
// source — streamed results are never written back to the cache, because a
// partially consumed stream must not poison it. Returns ok=false when the
// source cannot stream; callers fall back to Eval (which keeps the one-shot
// protocol and its cache fills). Accounting matches Eval: one SourcePushes
// per opened stream, TuplesShipped/BytesShipped per chunk as it arrives,
// CheckWire applied to every chunk before it is released downstream.
func (q *SourceQuery) Stream(ctx *Context) (tab.Cursor, bool, error) {
	src, ok := ctx.Sources[q.Source]
	if !ok {
		return nil, false, fmt.Errorf("algebra: unknown source %q", q.Source)
	}
	ss, ok := src.(PushStreamSource)
	if !ok {
		return nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if ctx.Cache != nil {
		if p := q.Prepared(); p.Enc != "" {
			key := CacheKey(q.Source, p.Enc, ParamsKey(p.Vars, ctx.Params))
			if t, ok := ctx.Cache.Get(key); ok {
				ctx.Stats.CacheHits++
				traceCounts(ctx, obs.Counts{CacheHits: 1})
				traceAnnotate(ctx, "cache", "hit")
				return tab.NewSliceCursor(t, 0), true, nil
			}
			ctx.Stats.CacheMisses++
			traceCounts(ctx, obs.Counts{CacheMisses: 1})
		}
	}
	if sr, ok := src.(StateReporter); ok {
		traceAnnotate(ctx, "breaker", sr.SourceState())
	}
	cctx := ctx.Ctx
	if cctx == nil {
		cctx = context.Background()
	}
	cur, err := ss.PushStream(cctx, q.Plan, ctx.Params)
	drainRetryStats(ctx, src)
	if err != nil {
		return nil, false, fmt.Errorf("source %s: %w", q.Source, err)
	}
	ctx.Stats.SourcePushes++
	traceCounts(ctx, obs.Counts{Pushes: 1})
	done := false
	fin := func() {
		if !done {
			done = true
			drainRetryStats(ctx, src)
		}
	}
	return &tab.FuncCursor{
		Columns: cur.Cols(),
		NextFn: func() (*tab.Tab, error) {
			t, err := cur.Next()
			if err != nil {
				fin()
				if err != io.EOF {
					err = fmt.Errorf("source %s: %w", q.Source, err)
				}
				return nil, err
			}
			countShipped(ctx, t)
			if ctx.CheckWire != nil {
				// Validate each chunk the moment it arrives, mirroring the
				// before-return check of the one-shot path.
				if cerr := ctx.CheckWire(q, t); cerr != nil {
					cur.Close()
					return nil, cerr
				}
			}
			return t, nil
		},
		CloseFn: func() error {
			fin()
			return cur.Close()
		},
	}, true, nil
}
