package algebra

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/tab"
)

// BatchSource is the optional set-at-a-time extension of Source (the
// batched information passing of Section 5.3's cost model): the plan is
// shipped once together with a list of parameter-binding rows, the source
// evaluates it once per binding, and the results come back as an indexed
// set — one tab per binding, in binding order. Over the wire this is one
// round trip instead of one per binding.
type BatchSource interface {
	Source
	// PushBatch evaluates plan once per binding set and returns exactly
	// len(bindings) result tabs, results[i] belonging to bindings[i]. The
	// call is all-or-error: on error no partial results are returned.
	PushBatch(plan Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error)
	// PushBatchContext is PushBatch under a cancellation context.
	PushBatchContext(ctx context.Context, plan Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error)
}

// DefaultBatchChunk is the number of binding sets shipped per batched push
// when Context.BatchChunk is unset.
const DefaultBatchChunk = 64

// PreparedPlan caches the per-plan work that set-at-a-time evaluation would
// otherwise repeat per row: the canonical XML encoding (used for cache keys)
// and the plan's free variables (the parameters it reads).
type PreparedPlan struct {
	Plan Op
	Enc  string   // canonical encoding; "" when the plan is not encodable
	Vars []string // sorted free variables
}

// PreparePlan computes a plan's PreparedPlan. Plans that cannot be encoded
// (e.g. carrying a Literal of unserializable cells is fine — Literal encodes
// — but an unknown operator type is not) get an empty Enc, which disables
// result caching for them without disabling evaluation.
func PreparePlan(op Op) *PreparedPlan {
	p := &PreparedPlan{Plan: op, Vars: FreeVars(op)}
	if enc, err := MarshalPlan(op); err == nil {
		p.Enc = enc
	}
	return p
}

// FreeVars returns, sorted, the variables a plan reads from Context.Params
// when evaluated: expression variables not bound by the operator's input
// columns, plus parameter Binds (From == nil, Doc == ""). These are exactly
// the bindings a DJoin must pass sideways for the plan to evaluate — tree
// construction variables are excluded because Cons evaluation reads input
// columns only, never parameters.
func FreeVars(op Op) []string {
	set := map[string]bool{}
	freeVars(op, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func freeVars(op Op, out map[string]bool) {
	if op == nil {
		return
	}
	switch x := op.(type) {
	case *Doc, *Literal:
	case *Bind:
		if x.From != nil {
			freeVars(x.From, out)
		} else if x.Doc == "" && x.Col != "" {
			out[x.Col] = true
		}
	case *Select:
		freeVars(x.From, out)
		exprFree(x.Pred, safeCols(x.From), out)
	case *Project:
		freeVars(x.From, out)
	case *MapExpr:
		freeVars(x.From, out)
		exprFree(x.E, safeCols(x.From), out)
	case *Join:
		freeVars(x.L, out)
		freeVars(x.R, out)
		exprFree(x.Pred, append(safeCols(x.L), safeCols(x.R)...), out)
	case *DJoin:
		freeVars(x.L, out)
		inner := map[string]bool{}
		freeVars(x.R, inner)
		lcols := colSetOf(safeCols(x.L))
		for v := range inner {
			if !lcols[v] {
				out[v] = true
			}
		}
	case *Union:
		freeVars(x.L, out)
		freeVars(x.R, out)
	case *Intersect:
		freeVars(x.L, out)
		freeVars(x.R, out)
	case *Distinct:
		freeVars(x.From, out)
	case *Group:
		freeVars(x.From, out)
	case *Sort:
		freeVars(x.From, out)
	case *TreeOp:
		freeVars(x.From, out)
	case *SourceQuery:
		freeVars(x.Plan, out)
	default:
		for _, c := range op.Children() {
			freeVars(c, out)
		}
	}
}

func exprFree(e Expr, inputCols []string, out map[string]bool) {
	if e == nil {
		return
	}
	cols := colSetOf(inputCols)
	for _, v := range e.Vars() {
		if !cols[v] {
			out[v] = true
		}
	}
}

func safeCols(op Op) []string {
	if op == nil {
		return nil
	}
	return op.Columns()
}

func colSetOf(cols []string) map[string]bool {
	m := make(map[string]bool, len(cols))
	for _, c := range cols {
		m[c] = true
	}
	return m
}

// DJoinBindings is the set-at-a-time form of a DJoin's outer input: the
// distinct parameter-binding sets the inner plan must be evaluated under
// (in first-occurrence order), plus the mapping from each outer row back to
// its set, so results re-expand to exactly the per-row output.
type DJoinBindings struct {
	Vars []string              // the inner plan's free variables, sorted
	Sets []map[string]tab.Cell // distinct binding sets, first-occurrence order
	Keys []string              // ParamsKey fragment per set, for cache keys
	Row  []int                 // outer row index -> Sets index
}

// NewDJoinBindings deduplicates the outer rows of a DJoin to distinct
// binding sets over the inner plan's free variables. A free variable is
// taken from the outer row when the left side provides the column, else
// from the surrounding parameters (a constant across rows, e.g. under a
// nested DJoin); variables bound by neither are simply absent, surfacing
// the same unbound-variable error the per-row path would produce.
func NewDJoinBindings(l *tab.Tab, vars []string, outer map[string]tab.Cell) *DJoinBindings {
	b := &DJoinBindings{Vars: vars, Row: make([]int, l.Len())}
	type varSrc struct {
		col      int
		constant tab.Cell
		isConst  bool
		present  bool
	}
	srcs := make([]varSrc, len(vars))
	for i, v := range vars {
		if ci := l.ColIndex(v); ci >= 0 {
			srcs[i] = varSrc{col: ci, present: true}
		} else if c, ok := outer[v]; ok {
			srcs[i] = varSrc{constant: c, isConst: true, present: true}
		}
	}
	seen := map[string]int{}
	for ri, r := range l.Rows {
		set := make(map[string]tab.Cell, len(vars))
		for i, v := range vars {
			s := srcs[i]
			if !s.present {
				continue
			}
			if s.isConst {
				set[v] = s.constant
			} else {
				set[v] = r[s.col]
			}
		}
		k := ParamsKey(vars, set)
		idx, ok := seen[k]
		if !ok {
			idx = len(b.Sets)
			seen[k] = idx
			b.Sets = append(b.Sets, set)
			b.Keys = append(b.Keys, k)
		}
		b.Row[ri] = idx
	}
	return b
}

// DJoinSet is the evaluation state of one set-at-a-time DJoin: the distinct
// binding sets and the per-set results being filled in. The serial path
// (DJoin.Eval) and the parallel engine (internal/exec) share it; the engine
// runs EvalChunk/EvalSet units concurrently — they write disjoint Results
// slots and only touch thread-safe state, so that is race-free.
type DJoinSet struct {
	Bindings *DJoinBindings
	Results  []*tab.Tab

	src    Source
	batch  BatchSource
	pushed *PreparedPlan // the plan shipped by batched pushes; nil when not batchable
	source string
}

// NewDJoinSet builds the set-at-a-time state for evaluating j over the
// materialized outer input l. The batched push path engages when the inner
// plan is directly a SourceQuery over a connected BatchSource; any other
// inner plan still benefits from deduplication, evaluated once per distinct
// binding set.
func NewDJoinSet(ctx *Context, j *DJoin, l *tab.Tab) *DJoinSet {
	s := &DJoinSet{
		Bindings: NewDJoinBindings(l, j.Prepared().Vars, ctx.Params),
	}
	s.Results = make([]*tab.Tab, len(s.Bindings.Sets))
	if sq, ok := j.R.(*SourceQuery); ok {
		if src, ok := ctx.Sources[sq.Source]; ok {
			if bs, ok := src.(BatchSource); ok {
				s.src = src
				s.batch = bs
				s.pushed = sq.Prepared()
				s.source = sq.Source
			}
		}
	}
	return s
}

// Batchable reports whether the inner plan goes through batched pushes.
func (s *DJoinSet) Batchable() bool { return s.batch != nil }

// PendingChunks probes the result cache for every binding set and returns
// the cache-missing set indexes grouped into push-sized chunks. Must only
// be called when Batchable. A non-positive Context.BatchChunk is an error:
// chunk sizes are validated where they enter the system (exec.Options.
// Validate, the yat-mediator flag) and defaulted by NewContext, so a bad
// value reaching this point is a configuration bug worth surfacing, not
// silently papering over.
func (s *DJoinSet) PendingChunks(ctx *Context) ([][]int, error) {
	chunk := ctx.BatchChunk
	if chunk < 1 {
		return nil, fmt.Errorf("algebra: Context.BatchChunk must be positive, got %d (exec.Options.Validate rejects this at the edge)", chunk)
	}
	var pending []int
	for i := range s.Bindings.Sets {
		if t, ok := s.cacheGet(ctx, i); ok {
			s.Results[i] = t
			continue
		}
		pending = append(pending, i)
	}
	var chunks [][]int
	for start := 0; start < len(pending); start += chunk {
		end := start + chunk
		if end > len(pending) {
			end = len(pending)
		}
		chunks = append(chunks, pending[start:end])
	}
	return chunks, nil
}

// EvalChunk ships one batched push (a single round trip) for the given set
// indexes, stores the per-set results and populates the cache. On error no
// result of the failed push is stored or cached. Under tracing, each chunk
// gets its own span (child of the ambient DJoin or worker span) so a
// profile shows every batched round trip individually.
func (s *DJoinSet) EvalChunk(ctx *Context, idxs []int) error {
	if ctx.Trace != nil {
		sp := ctx.Trace.NewChild("chunk", fmt.Sprintf("PushBatch(%s) [%d bindings]", s.source, len(idxs)))
		cc := *ctx
		cc.Trace = sp
		if cc.Ctx != nil {
			cc.Ctx = obs.WithSpan(cc.Ctx, sp)
		}
		err := s.evalChunk(&cc, idxs)
		rows := 0
		for _, bi := range idxs {
			if s.Results[bi] != nil {
				rows += s.Results[bi].Len()
			}
		}
		sp.Finish(rows, err)
		return err
	}
	return s.evalChunk(ctx, idxs)
}

func (s *DJoinSet) evalChunk(ctx *Context, idxs []int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sets := make([]map[string]tab.Cell, len(idxs))
	for i, bi := range idxs {
		sets[i] = s.Bindings.Sets[bi]
	}
	var res []*tab.Tab
	var err error
	if ctx.Ctx != nil {
		res, err = s.batch.PushBatchContext(ctx.Ctx, s.pushed.Plan, sets)
	} else {
		res, err = s.batch.PushBatch(s.pushed.Plan, sets)
	}
	drainRetryStats(ctx, s.src)
	if err != nil {
		return fmt.Errorf("source %s: %w", s.source, err)
	}
	if len(res) != len(sets) {
		return fmt.Errorf("source %s: batch returned %d results for %d bindings", s.source, len(res), len(sets))
	}
	ctx.Stats.SourcePushes++
	traceCounts(ctx, obs.Counts{Pushes: 1})
	for i, bi := range idxs {
		countShipped(ctx, res[i])
		s.Results[bi] = res[i]
		s.cachePut(ctx, bi, res[i])
	}
	return nil
}

// EvalSet evaluates the inner plan for one distinct binding set through
// eval (the recursive evaluator of the caller — plain Eval serially, the
// engine's eval under parallel execution). Used when not Batchable.
func (s *DJoinSet) EvalSet(ctx *Context, i int, inner Op, eval func(*Context, Op) (*tab.Tab, error)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sub, err := eval(ctx.WithParams(s.Bindings.Sets[i]), inner)
	if err != nil {
		return err
	}
	s.Results[i] = sub
	return nil
}

// Expand recombines the per-set results with the outer rows, producing
// exactly the rows — in exactly the order — of per-row DJoin evaluation.
func (s *DJoinSet) Expand(l *tab.Tab, cols []string) *tab.Tab {
	out := tab.New(cols...)
	for ri, lr := range l.Rows {
		sub := s.Results[s.Bindings.Row[ri]]
		for _, rr := range sub.Rows {
			out.AddRow(append(lr.Clone(), rr...))
		}
	}
	return out
}

func (s *DJoinSet) cacheGet(ctx *Context, i int) (*tab.Tab, bool) {
	if ctx.Cache == nil || s.pushed.Enc == "" {
		return nil, false
	}
	t, ok := ctx.Cache.Get(CacheKey(s.source, s.pushed.Enc, s.Bindings.Keys[i]))
	if ok {
		ctx.Stats.CacheHits++
		traceCounts(ctx, obs.Counts{CacheHits: 1})
	} else {
		ctx.Stats.CacheMisses++
		traceCounts(ctx, obs.Counts{CacheMisses: 1})
	}
	return t, ok
}

func (s *DJoinSet) cachePut(ctx *Context, i int, t *tab.Tab) {
	if ctx.Cache == nil || s.pushed.Enc == "" {
		return
	}
	if ctx.Cache.Put(CacheKey(s.source, s.pushed.Enc, s.Bindings.Keys[i]), t) {
		ctx.Stats.CacheEvictions++
	}
}

// countShipped accounts rows received from a source (shared by the per-push
// and batched paths).
func countShipped(ctx *Context, t *tab.Tab) {
	ctx.Stats.TuplesShipped += t.Len()
	traceCounts(ctx, obs.Counts{Tuples: t.Len()})
	for _, r := range t.Rows {
		for _, c := range r {
			ctx.Stats.BytesShipped += int64(len(c.Key()))
		}
	}
}
