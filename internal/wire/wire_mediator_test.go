// Mediator-level tests over the wire live in an external test package:
// the mediator imports wire (error classification for its circuit
// breakers), so an in-package test importing mediator would be a cycle.
package wire_test

import (
	"net"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// deployO2 starts an O₂ wrapper server on an ephemeral port.
func deployO2(t *testing.T) *wire.Server {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	schema := ow.ExportSchema()
	srv := wire.Serve(ln, wire.Exported{
		Source:    ow,
		Interface: ow.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		},
	})
	t.Cleanup(srv.Close)
	return srv
}

// deployWais starts a WAIS wrapper server on an ephemeral port.
func deployWais(t *testing.T) *wire.Server {
	t.Helper()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(datagen.PaperWorks()))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(ln, wire.Exported{
		Source:    ww,
		Interface: ww.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"works": {Model: ww.ExportStructure(), Pattern: "Works"},
		},
	})
	t.Cleanup(srv.Close)
	return srv
}

func TestDistributedFigure2Deployment(t *testing.T) {
	// The full Figure 2 scenario over TCP: two wrapper servers, a mediator
	// connecting through wire clients, view1 loaded, Q1 and Q2 evaluated.
	o2srv := deployO2(t)
	waissrv := deployWais(t)

	m := mediator.New()
	for _, addr := range []string{o2srv.Addr(), waissrv.Addr()} {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		iface, err := c.ImportInterface()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(c, iface); err != nil {
			t.Fatal(err)
		}
		sts, err := c.ImportStructures()
		if err != nil {
			t.Fatal(err)
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	q1, err := m.Query(datagen.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Tab.Len() != 1 {
		t.Fatalf("distributed Q1 rows = %d\n%s", q1.Tab.Len(), q1.Plan)
	}
	if a, _ := q1.Tab.Rows[0][0].AsAtom(); a.S != "Nympheas" {
		t.Errorf("Q1 = %v", q1.Tab.Rows[0])
	}

	q2, err := m.Query(datagen.Q2Src)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Tab.Len() != 1 || q2.Tab.Rows[0][0].Tree.Child("title").Atom.S != "Waterloo Bridge" {
		t.Fatalf("distributed Q2 = %s\nplan:\n%s", q2.Tab, q2.Plan)
	}
	if !strings.Contains(q2.Plan, "SourceQuery") {
		t.Errorf("distributed plan must push to sources:\n%s", q2.Plan)
	}
}

func TestDistributedNaiveQueryAgrees(t *testing.T) {
	// Even the naive strategy (materialize the view from fetched documents)
	// works over the wire and agrees with the optimized result: fetched
	// atoms are retyped so year comparisons behave.
	o2srv := deployO2(t)
	waissrv := deployWais(t)
	m := mediator.New()
	for _, addr := range []string{o2srv.Addr(), waissrv.Addr()} {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		iface, err := c.ImportInterface()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Connect(c, iface); err != nil {
			t.Fatal(err)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	naive, err := m.QueryNaive(datagen.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := m.Query(datagen.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Tab.Len() != 1 || !naive.Tab.EqualUnordered(opt.Tab) {
		t.Errorf("naive:\n%s\noptimized:\n%s", naive.Tab, opt.Tab)
	}
	if naive.Stats.SourceFetches == 0 {
		t.Error("naive strategy must fetch documents")
	}
}
