package wire

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/datagen"
	"repro/internal/o2wrap"
)

// A wrapper exporting a malformed capability description must fail
// ImportInterface with an error naming the source, not hand the mediator a
// half-parsed interface that breaks planning later.
func TestImportInterfaceNamesBadSource(t *testing.T) {
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	bad := capability.NewInterface("o2artifact")
	// An operation without a kind serializes fine but must be rejected on
	// import.
	bad.Operations = append(bad.Operations, capability.Operation{Name: "eq"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Exported{Source: ow, Interface: bad})
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ImportInterface()
	if err == nil {
		t.Fatal("import of a malformed interface must fail")
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatalf("malformed description must not look like a missing one: %v", err)
	}
	for _, want := range []string{"o2artifact", ln.Addr().String(), `<operation name="eq">`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q must mention %q", err, want)
		}
	}
}

// A source that exports no interface at all keeps answering with a
// RemoteError — the signal the console uses to degrade to fetch-only.
func TestImportInterfaceAbsentIsRemoteError(t *testing.T) {
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Exported{Source: ow})
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ImportInterface()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError for an absent interface, got %v", err)
	}
}
