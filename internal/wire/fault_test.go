package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/o2wrap"
)

// serveO2Idle starts an O₂ wrapper server with a custom idle deadline.
func serveO2Idle(t *testing.T, idle time.Duration) *Server {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(ln, Exported{Source: ow}, idle, time.Second)
	t.Cleanup(srv.Close)
	return srv
}

// serveO2Faulty starts an O₂ wrapper server behind a fault injector.
func serveO2Faulty(t *testing.T, inj *faults.Injector) *Server {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(inj.Listener(ln), Exported{Source: ow})
	t.Cleanup(srv.Close)
	return srv
}

// takeStats drains the client's retry counters, failing on error.
func fetchArtifacts(t *testing.T, c *Client) {
	t.Helper()
	f, err := c.Fetch("artifacts")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if len(f) == 0 || f[0].Label != "set" || len(f[0].Kids) != 3 {
		t.Fatalf("fetch returned wrong extent: %v", f)
	}
}

func TestStaleIdleConnRedialRegression(t *testing.T) {
	// A connection parked in the pool while the server's idle deadline
	// passes is dead on reuse: the next request on it fails with EOF before
	// any response byte arrives. The client must transparently redial and
	// retry that request, not surface the EOF. MaxConnIdle is disabled here
	// so the redial layer alone is exercised.
	srv := serveO2Idle(t, 100*time.Millisecond)
	c, err := DialWith(context.Background(), srv.Addr(), Options{MaxConnIdle: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TakeRetryStats() // discard dial-time noise
	fetchArtifacts(t, c)
	// Let the server hang up on the parked connection.
	time.Sleep(300 * time.Millisecond)
	fetchArtifacts(t, c)
	retries, redials := c.TakeRetryStats()
	if redials != 1 {
		t.Errorf("redials = %d, want 1 (stale conn must redial transparently)", redials)
	}
	if retries != 0 {
		t.Errorf("retries = %d, want 0 (redial must not burn a retry attempt)", retries)
	}
}

func TestMaxConnIdleDropsStaleBeforeReuse(t *testing.T) {
	// With a freshness bound below the server's idle deadline, a conn
	// parked too long is dropped at acquire time: the request runs on a
	// fresh dial and never observes the stale EOF at all.
	srv := serveO2Idle(t, 100*time.Millisecond)
	c, err := DialWith(context.Background(), srv.Addr(), Options{MaxConnIdle: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TakeRetryStats()
	fetchArtifacts(t, c)
	time.Sleep(300 * time.Millisecond)
	fetchArtifacts(t, c)
	retries, redials := c.TakeRetryStats()
	if retries != 0 || redials != 0 {
		t.Errorf("retries, redials = %d, %d, want 0, 0 (aged-out conn must be dropped, not redialed)", retries, redials)
	}
}

func TestClosedClientIdleReuseReturnsTyped(t *testing.T) {
	// A request racing Close must get the explicit closed error even on
	// the idle-reuse fast path, not an EOF from the closed socket.
	srv := serveO2Idle(t, time.Minute)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fetchArtifacts(t, c) // parks a conn in the idle pool
	c.Close()
	if _, err := c.Fetch("artifacts"); !errors.Is(err, ErrClientClosed) {
		t.Errorf("fetch on closed client = %v, want ErrClientClosed", err)
	}
}

func TestDialPoolContextHonorsDeadline(t *testing.T) {
	// A wrapper that accepts the TCP connection but never answers the hello
	// must not hang startup: the dial context's deadline bounds the whole
	// handshake.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, never respond
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialPoolContext(ctx, ln.Addr().String(), 2)
	if err == nil {
		t.Fatal("dial against a mute server must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("dial error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("dial took %v: deadline did not bound the handshake", elapsed)
	}
}

func TestRetryRecoversFromSingleFault(t *testing.T) {
	// One injected fault of each transport kind; the retry layer must make
	// the fetch succeed anyway and account for the recovery work.
	for _, kind := range []faults.Kind{faults.Drop, faults.Truncate, faults.Garble} {
		t.Run(kind.String(), func(t *testing.T) {
			inj := faults.New(faults.Config{Seed: 1, Rate: 1, Kinds: []faults.Kind{kind}, After: 1, Max: 1})
			srv := serveO2Faulty(t, inj)
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.TakeRetryStats()
			fetchArtifacts(t, c)
			if inj.Injected() != 1 {
				t.Fatalf("injected = %d, want 1", inj.Injected())
			}
			retries, redials := c.TakeRetryStats()
			if retries+redials < 1 {
				t.Errorf("retries+redials = %d+%d, want >= 1 after a %s fault", retries, redials, kind)
			}
		})
	}
}

func TestGarbleExhaustsRetriesToCorruptError(t *testing.T) {
	// Every response garbled: retries are exhausted and the typed corrupt
	// error surfaces, with exactly MaxAttempts-1 retries counted.
	inj := faults.New(faults.Config{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.Garble}, After: 1})
	srv := serveO2Faulty(t, inj)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TakeRetryStats()
	_, err = c.Fetch("artifacts")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("fetch error = %v, want CorruptError", err)
	}
	retries, _ := c.TakeRetryStats()
	if want := DefaultRetryPolicy.MaxAttempts - 1; retries != want {
		t.Errorf("retries = %d, want %d", retries, want)
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	// A server <error> frame is an answer, not an outage: it must surface
	// immediately as RemoteError with zero retries.
	srv := serveO2Idle(t, time.Minute)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TakeRetryStats()
	_, err = c.Fetch("ghost")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("fetch error = %v, want RemoteError", err)
	}
	if retries, redials := c.TakeRetryStats(); retries != 0 || redials != 0 {
		t.Errorf("retries, redials = %d, %d, want 0, 0", retries, redials)
	}
}

func TestDelayBeyondDeadlineIsDeadlineExceeded(t *testing.T) {
	// A wrapper stalling longer than the caller's budget must yield the
	// context error (so callers can tell budget exhaustion from outage) and
	// must not be retried: the budget is spent.
	inj := faults.New(faults.Config{
		Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.Delay},
		Delay: 300 * time.Millisecond, After: 1,
	})
	srv := serveO2Faulty(t, inj)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TakeRetryStats()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err = c.FetchContext(ctx, "artifacts")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("fetch under stall = %v, want context.DeadlineExceeded", err)
	}
	if retries, _ := c.TakeRetryStats(); retries != 0 {
		t.Errorf("retries = %d, want 0 (an expired budget must not retry)", retries)
	}
}

func TestClientSideInjectionRecovers(t *testing.T) {
	// The client-side hook (Options.WrapConn) injects the same fault kinds
	// on response reads; the retry layer recovers identically.
	inj := faults.New(faults.Config{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.Drop}, After: 1, Max: 1})
	srv := serveO2Idle(t, time.Minute)
	c, err := DialWith(context.Background(), srv.Addr(), Options{WrapConn: inj.WrapConn})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.TakeRetryStats()
	fetchArtifacts(t, c)
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", inj.Injected())
	}
	retries, redials := c.TakeRetryStats()
	if retries+redials < 1 {
		t.Errorf("retries+redials = %d+%d, want >= 1", retries, redials)
	}
}
