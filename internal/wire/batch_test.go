package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
)

func batchPlan() algebra.Op {
	// Free variable $lo parameterizes the predicate: each binding selects a
	// different year range.
	return &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]`)},
		Pred: algebra.MustParseExpr(`$y > $lo`),
	}
}

func TestPushBatchRoundTrip(t *testing.T) {
	srv, ow := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	plan := batchPlan()
	lo := func(y int64) map[string]tab.Cell {
		return map[string]tab.Cell{"$lo": tab.AtomCell(data.Int(y))}
	}
	// Three bindings, the third a duplicate of the first: the protocol makes
	// no dedup promises — three bindings in, three results out, in order.
	bindings := []map[string]tab.Cell{lo(1800), lo(3000), lo(1800)}
	res, err := c.PushBatch(plan, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d, want 3", len(res))
	}
	for i, b := range bindings {
		local, err := ow.Push(plan, b)
		if err != nil {
			t.Fatal(err)
		}
		if !res[i].EqualUnordered(local) {
			t.Errorf("binding %d: remote\n%s\nlocal\n%s", i, res[i], local)
		}
	}
	if res[1].Len() != 0 {
		t.Errorf("year > 3000 should be empty: %s", res[1])
	}
	if !res[0].EqualUnordered(res[2]) {
		t.Error("duplicate bindings must yield equal results")
	}

	// An empty binding list short-circuits client-side: no round trip.
	if out, err := c.PushBatch(plan, nil); err != nil || out != nil {
		t.Errorf("empty batch = %v, %v", out, err)
	}
}

func TestPushBatchServerHandlesEmptyBindings(t *testing.T) {
	// The client never ships an empty batch, but the server must survive one
	// from a foreign client: zero bindings in, zero results out.
	srv, _ := serveO2(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, err := algebra.MarshalPlan(batchPlan())
	if err != nil {
		t.Fatal(err)
	}
	req := "<pushbatch><plan>" + enc + "</plan><bindings>" +
		tab.Marshal(tab.New("$lo")) + "</bindings></pushbatch>"
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "batch") || strings.Contains(resp, "error") {
		t.Errorf("empty batch response = %q", resp)
	}
}

func TestPushBatchMalformedFrames(t *testing.T) {
	srv, _ := serveO2(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, err := algebra.MarshalPlan(batchPlan())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		req  string
		want string
	}{
		{"<pushbatch/>", "without plan"},
		{"<pushbatch><plan><bogus-op/></plan><bindings>" +
			tab.Marshal(tab.New("$lo")) + "</bindings></pushbatch>", "plan"},
		{"<pushbatch><plan>" + enc + "</plan></pushbatch>", "without bindings"},
		{"<pushbatch><plan>" + enc + "</plan><bindings><not-a-tab/></bindings></pushbatch>", "bindings"},
	}
	for _, c := range cases {
		if err := WriteFrame(conn, c.req); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "error") || !strings.Contains(resp, c.want) {
			t.Errorf("req %q: resp %q, want error mentioning %q", c.req[:40], resp, c.want)
		}
	}
	// The connection survives malformed requests: a healthy one still works.
	if err := WriteFrame(conn, "<hello/>"); err != nil {
		t.Fatal(err)
	}
	if resp, err := ReadFrame(conn); err != nil || !strings.Contains(resp, "o2artifact") {
		t.Errorf("post-error hello = %q, %v", resp, err)
	}
}

func TestPushBatchErrorPropagates(t *testing.T) {
	// A plan the wrapper cannot evaluate fails the whole batch with a single
	// error frame; the client surfaces it and returns no partial results.
	srv, _ := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class[ artifact.tuple[ ghost: $g ] ] ]`)}
	res, err := c.PushBatch(bad, []map[string]tab.Cell{{}, {}})
	if err == nil || res != nil {
		t.Fatalf("bad batch = %v, %v; want remote error and nil results", res, err)
	}
	if !strings.Contains(err.Error(), "pushbatch") {
		t.Errorf("error should come from the pushbatch handler: %v", err)
	}
}

func TestOversizedFrameClosesConnection(t *testing.T) {
	srv, _ := serveO2(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A header claiming a body beyond MaxFrame must abort the connection —
	// the server hangs up instead of allocating.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(conn); err == nil {
		t.Fatal("server answered an oversized frame instead of disconnecting")
	}
}

// stallSource delays every push by the configured duration, simulating a slow
// or hung wrapper.
type stallSource struct {
	mu    sync.Mutex
	delay time.Duration
}

func (s *stallSource) setDelay(d time.Duration) {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
}

func (s *stallSource) Name() string                      { return "stall" }
func (s *stallSource) Documents() []string               { return nil }
func (s *stallSource) Fetch(string) (data.Forest, error) { return nil, fmt.Errorf("no docs") }
func (s *stallSource) Push(algebra.Op, map[string]tab.Cell) (*tab.Tab, error) {
	s.mu.Lock()
	d := s.delay
	s.mu.Unlock()
	time.Sleep(d)
	return tab.New("$x"), nil
}

func TestPoolSurvivesRepeatedTimeouts(t *testing.T) {
	// Regression: a request that dies on its context deadline must free its
	// pool slot (and its watchdog must not poison a reused connection), so a
	// burst of timeouts far beyond the pool bound cannot wedge the client.
	src := &stallSource{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Exported{Source: src})
	defer srv.Close()

	const maxConns = 2
	c, err := DialPool(srv.Addr(), maxConns)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	plan := &algebra.Bind{Doc: "d", F: filter.MustParse(`x: $v`)}
	src.setDelay(300 * time.Millisecond)
	for i := 0; i < 3*maxConns; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		_, err := c.PushContext(ctx, plan, nil)
		cancel()
		if err == nil {
			t.Fatalf("push %d should have timed out", i)
		}
	}

	// Every slot must be free again: a healthy push succeeds promptly.
	src.setDelay(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.PushContext(ctx, plan, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healthy push after timeout burst: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool exhausted: healthy push never completed")
	}
}
