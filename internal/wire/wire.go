// Package wire implements the network protocol between wrappers and
// mediators (Figure 2): wrappers serve their structural metadata,
// capability interfaces, documents and pushed-query evaluation over TCP;
// the mediator side exposes a remote wrapper as an algebra.Source. For
// interoperability, every payload is XML (Section 2: "wrappers and
// mediators communicate data, structures and operations in XML"), framed
// by a 4-byte big-endian length prefix.
//
// Requests:
//
//	<hello/>                                  → <wrapper name=... docs=.../>
//	<interface-request/>                      → <interface .../>
//	<structures-request/>                     → <structures><model .../>*</structures>
//	<fetch doc="works"/>                      → <forest>trees</forest>
//	<push><plan>...</plan><params>tab</params></push> → <tab .../>
//
// Errors travel as <error msg="..."/>.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/pattern"
	"repro/internal/tab"
	"repro/internal/xmlenc"
)

// MaxFrame bounds a single message (16 MiB); larger frames abort the
// connection rather than exhausting memory.
const MaxFrame = 16 << 20

// WriteFrame writes one length-prefixed XML payload.
func WriteFrame(w io.Writer, payload string) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, payload)
	return err
}

// ReadFrame reads one length-prefixed XML payload.
func ReadFrame(r io.Reader) (string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return "", fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Exported is everything a wrapper serves: the source itself, its
// capability interface and its structural models (document name → model and
// root pattern name).
type Exported struct {
	Source     algebra.Source
	Interface  *capability.Interface
	Structures map[string]StructureRef
}

// StructureRef names a document's structural pattern within a model.
type StructureRef struct {
	Model   *pattern.Model
	Pattern string
}

// Server serves one wrapper over a listener.
type Server struct {
	Exp Exported
	ln  net.Listener
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// Serve starts serving on the listener and returns immediately; call Close
// to stop. Each connection handles a sequence of requests.
func Serve(ln net.Listener, exp Exported) *Server {
	s := &Server{Exp: exp, ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				s.handle(conn)
			}()
		}
	}()
	return s
}

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() {
	s.ln.Close()
	s.wg.Wait()
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) handle(conn net.Conn) {
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return // connection closed
		}
		resp := s.respond(req)
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func errorXML(format string, args ...any) string {
	n := data.Elem("error")
	n.Add(data.Text("@msg", fmt.Sprintf(format, args...)))
	return xmlenc.Serialize(n)
}

func (s *Server) respond(req string) string {
	n, err := xmlenc.Parse(req)
	if err != nil {
		return errorXML("bad request: %v", err)
	}
	switch n.Label {
	case "hello":
		resp := data.Elem("wrapper")
		resp.Add(data.Text("@name", s.Exp.Source.Name()))
		docs := ""
		for i, d := range s.Exp.Source.Documents() {
			if i > 0 {
				docs += " "
			}
			docs += d
		}
		resp.Add(data.Text("@docs", docs))
		return xmlenc.Serialize(resp)
	case "interface-request":
		if s.Exp.Interface == nil {
			return errorXML("no interface exported")
		}
		return xmlenc.Serialize(capability.ToXML(s.Exp.Interface))
	case "structures-request":
		resp := data.Elem("structures")
		for doc, ref := range s.Exp.Structures {
			entry := data.Elem("structure")
			entry.Add(data.Text("@doc", doc))
			entry.Add(data.Text("@pattern", ref.Pattern))
			entry.Add(pattern.ModelToXML(ref.Model))
			resp.Add(entry)
		}
		return xmlenc.Serialize(resp)
	case "fetch":
		doc := attr(n, "doc")
		forest, err := s.Exp.Source.Fetch(doc)
		if err != nil {
			return errorXML("fetch %s: %v", doc, err)
		}
		resp := data.Elem("forest")
		resp.Kids = append(resp.Kids, forest...)
		return xmlenc.Serialize(resp)
	case "push":
		planNode := n.Child("plan")
		if planNode == nil {
			return errorXML("push without plan")
		}
		plan, err := algebra.PlanFromXML(firstElem(planNode))
		if err != nil {
			return errorXML("push plan: %v", err)
		}
		params := map[string]tab.Cell{}
		if pn := n.Child("params"); pn != nil {
			if tn := firstElem(pn); tn != nil {
				pt, err := tab.FromXML(tn)
				if err != nil {
					return errorXML("push params: %v", err)
				}
				if pt.Len() > 0 {
					for i, c := range pt.Cols {
						params[c] = pt.Rows[0][i]
					}
				}
			}
		}
		res, err := s.Exp.Source.Push(plan, params)
		if err != nil {
			return errorXML("push: %v", err)
		}
		return tab.Marshal(res)
	default:
		return errorXML("unknown request <%s>", n.Label)
	}
}

func attr(n *data.Node, name string) string {
	if c := n.Child("@" + name); c != nil && c.Atom != nil {
		return c.Atom.S
	}
	return ""
}

func firstElem(n *data.Node) *data.Node {
	for _, k := range n.Kids {
		if len(k.Label) > 0 && k.Label[0] != '@' {
			return k
		}
	}
	return nil
}

// Client is the mediator-side proxy for a remote wrapper; it implements
// algebra.Source over one TCP connection (requests are serialized).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	name string
	docs []string
}

// Dial connects to a wrapper and performs the hello exchange.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	resp, err := c.roundTrip(`<hello/>`)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.name = attr(resp, "name")
	if d := attr(resp, "docs"); d != "" {
		c.docs = splitSpace(d)
	}
	return c, nil
}

func splitSpace(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req string) (*data.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	n, err := xmlenc.Parse(resp)
	if err != nil {
		return nil, err
	}
	if n.Label == "error" {
		return nil, fmt.Errorf("wire: remote error: %s", attr(n, "msg"))
	}
	return n, nil
}

// Name implements algebra.Source.
func (c *Client) Name() string { return c.name }

// Documents implements algebra.Source.
func (c *Client) Documents() []string { return append([]string(nil), c.docs...) }

// Fetch implements algebra.Source.
func (c *Client) Fetch(doc string) (data.Forest, error) {
	req := data.Elem("fetch")
	req.Add(data.Text("@doc", doc))
	resp, err := c.roundTrip(xmlenc.Serialize(req))
	if err != nil {
		return nil, err
	}
	if resp.Label != "forest" {
		return nil, fmt.Errorf("wire: unexpected response <%s>", resp.Label)
	}
	// XML carries atoms as text; restore numeric/boolean typing so that
	// mediator-side predicates (e.g. $y > 1800) behave as they do against
	// an in-process wrapper.
	out := make(data.Forest, len(resp.Kids))
	for i, n := range resp.Kids {
		out[i] = xmlenc.InferAtoms(n)
	}
	return out, nil
}

// Push implements algebra.Source.
func (c *Client) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	planXML, err := algebra.PlanToXML(plan)
	if err != nil {
		return nil, err
	}
	req := data.Elem("push", data.Elem("plan", planXML))
	if len(params) > 0 {
		cols := make([]string, 0, len(params))
		for k := range params {
			cols = append(cols, k)
		}
		pt := tab.New(cols...)
		row := make(tab.Row, len(cols))
		for i, k := range cols {
			row[i] = params[k]
		}
		pt.AddRow(row)
		req.Add(data.Elem("params", tab.ToXML(pt)))
	}
	resp, err := c.roundTrip(xmlenc.Serialize(req))
	if err != nil {
		return nil, err
	}
	return tab.FromXML(resp)
}

// ImportInterface fetches the wrapper's capability interface.
func (c *Client) ImportInterface() (*capability.Interface, error) {
	resp, err := c.roundTrip(`<interface-request/>`)
	if err != nil {
		return nil, err
	}
	return capability.FromXML(resp)
}

// ImportStructures fetches the wrapper's structural models.
func (c *Client) ImportStructures() (map[string]StructureRef, error) {
	resp, err := c.roundTrip(`<structures-request/>`)
	if err != nil {
		return nil, err
	}
	out := map[string]StructureRef{}
	for _, k := range resp.Kids {
		if k.Label != "structure" {
			continue
		}
		me := k.Child("model")
		if me == nil {
			return nil, fmt.Errorf("wire: structure without model")
		}
		m, err := pattern.ModelFromXML(me)
		if err != nil {
			return nil, err
		}
		out[attr(k, "doc")] = StructureRef{Model: m, Pattern: attr(k, "pattern")}
	}
	return out, nil
}
