// Package wire implements the network protocol between wrappers and
// mediators (Figure 2): wrappers serve their structural metadata,
// capability interfaces, documents and pushed-query evaluation over TCP;
// the mediator side exposes a remote wrapper as an algebra.Source. For
// interoperability, every payload is XML (Section 2: "wrappers and
// mediators communicate data, structures and operations in XML"), framed
// by a 4-byte big-endian length prefix.
//
// Requests:
//
//	<hello/>                                  → <wrapper name=... docs=.../>
//	<interface-request/>                      → <interface .../>
//	<structures-request/>                     → <structures><model .../>*</structures>
//	<fetch doc="works"/>                      → <forest>trees</forest>
//	<push><plan>...</plan><params>tab</params></push> → <tab .../>
//	<pushbatch><plan>...</plan><bindings>tab</bindings></pushbatch> → <batch><tab/>*</batch>
//
// pushbatch is the set-at-a-time form of push (batched information
// passing): the plan ships once with one binding row per parameter set; the
// wrapper evaluates it per binding — natively when its source implements
// algebra.BatchSource, else by looping Push server-side — and answers with
// one <tab> per binding, in binding order, in a single round trip.
//
// fetchstream and pushstream are the streamed forms of fetch and push:
// the response is a sequence of frames — a <streamhead> header, bounded
// row/tree chunk frames, and a terminal <streamend> — instead of one
// monolithic frame, so a large result never materializes for the wire's
// sake. See stream.go for the frame grammar and the fallback handshake
// against old wrappers.
//
// Errors travel as <error msg="..."/>.
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/tab"
	"repro/internal/xmlenc"
)

// MaxFrame bounds a single message (16 MiB); larger frames abort the
// connection rather than exhausting memory.
const MaxFrame = 16 << 20

// DefaultIdleTimeout bounds how long a server connection may sit between
// requests: a stalled or vanished client is disconnected instead of pinning
// its handler goroutine (and its slot in the accept loop's wait group)
// forever.
const DefaultIdleTimeout = 2 * time.Minute

// DefaultWriteTimeout bounds writing one response frame to a client that
// has stopped reading.
const DefaultWriteTimeout = 30 * time.Second

// DefaultMaxConns bounds the connection pool a Client grows on demand when
// the parallel execution engine issues overlapping requests.
const DefaultMaxConns = 8

// DefaultMaxServerConns bounds the connections one Server handles
// concurrently. Each accepted connection pins a handler goroutine for its
// lifetime, so without a bound one misbehaving client (or a mediator fleet
// sized beyond the wrapper) can exhaust the process; excess connections are
// refused with a structured <error> frame instead of being accepted and
// starved.
const DefaultMaxServerConns = 256

// ErrServerBusy is the message a server at its connection cap answers new
// connections with (as a RemoteError on the client side) before closing
// them. Clients treat RemoteError as proof of life — the refusal does not
// count against retry budgets or circuit breakers; a replica router routes
// around the busy wrapper instead.
const ErrServerBusy = "wrapper busy: connection limit reached"

// DefaultMaxConnIdle bounds how long a pooled connection may sit parked
// before the client drops it instead of reusing it. Servers disconnect
// idle clients (DefaultIdleTimeout), so a conn parked longer than the
// server's idle window has likely been hung up on already; reusing it
// yields a bare EOF on the next request. This bound must stay below the
// serving side's idle deadline.
const DefaultMaxConnIdle = time.Minute

// ErrClientClosed is returned for requests issued on a closed client —
// including requests racing Close that would otherwise fail with a
// confusing EOF from a just-closed pooled connection.
var ErrClientClosed = errors.New("wire: client closed")

// RemoteError is a server-reported <error> frame: the wrapper is alive,
// received the request and answered that it cannot serve it. Retrying
// cannot help, so RemoteError is never retried.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// CorruptError marks a response frame that arrived whole but whose XML
// does not parse — a transport-level corruption (e.g. a garbling
// middlebox). The request is a read-only query, so the exchange is
// retryable like any other transport failure.
type CorruptError struct{ Err error }

// Error implements error.
func (e *CorruptError) Error() string { return fmt.Sprintf("wire: corrupt response: %v", e.Err) }

// Unwrap exposes the parse failure.
func (e *CorruptError) Unwrap() error { return e.Err }

// IsRetryable classifies an error from a wire exchange: true for
// transport-level failures — broken, reset or refused connections,
// connection timeouts not caused by the caller's context, truncated or
// corrupt frames — where retrying the idempotent request may succeed;
// false for semantic outcomes: a server-reported <error> (RemoteError), a
// closed client, or the caller's context expiring (its budget is spent,
// retrying would only overrun it further).
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrClientClosed) {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// RetryPolicy bounds the client's transparent retries. Every request the
// client issues (hello, fetch, push, pushbatch) is a read-only query,
// hence idempotent: re-sending a failed exchange cannot duplicate effects
// at the wrapper. Retries apply only to transport failures (IsRetryable);
// RemoteError and context cancellation return immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per request including
	// the first; values <= 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; every further
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
	// Jitter randomizes each backoff multiplicatively within
	// [1-Jitter, 1+Jitter], decorrelating the retry storms of concurrent
	// requests.
	Jitter float64
	// Seed seeds the jitter stream, making retry timing reproducible.
	Seed int64
}

// DefaultRetryPolicy is the policy installed by Dial/DialPool.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   5 * time.Millisecond,
	MaxDelay:    250 * time.Millisecond,
	Jitter:      0.5,
	Seed:        1,
}

// backoff computes the wait before retry number `retry` (0-based): an
// exponentially grown BaseDelay capped at MaxDelay, jittered by rnd ∈ [0,1).
func (p RetryPolicy) backoff(retry int, rnd float64) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = DefaultRetryPolicy.BaseDelay
	}
	for i := 0; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rnd-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// WriteFrame writes one length-prefixed XML payload.
func WriteFrame(w io.Writer, payload string) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, payload)
	return err
}

// ReadFrame reads one length-prefixed XML payload.
func ReadFrame(r io.Reader) (string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return "", fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Exported is everything a wrapper serves: the source itself, its
// capability interface and its structural models (document name → model and
// root pattern name).
type Exported struct {
	Source     algebra.Source
	Interface  *capability.Interface
	Structures map[string]StructureRef
	// Obs, when non-nil, records a span per handled request — carrying the
	// caller's trace id when the frame was tagged — and feeds per-request
	// counters and latency histograms into its registry (the wrapper's
	// -metrics-addr plane). Traced fetch/push/pushbatch responses are
	// additionally stamped with an obs-ns attribute, the wrapper-side
	// evaluation time, which the client folds back into the caller's span.
	Obs *obs.Observer
}

// StructureRef names a document's structural pattern within a model.
type StructureRef struct {
	Model   *pattern.Model
	Pattern string
}

// Server serves one wrapper over a listener.
type Server struct {
	Exp   Exported
	ln    net.Listener
	idle  time.Duration
	write time.Duration
	slots chan struct{} // one token per inflight connection handler
	wg    sync.WaitGroup
	mu    sync.Mutex
	err   error

	// refused counts connections turned away at the cap (observability for
	// tests and load experiments).
	refused atomic.Int64
}

// ServeOptions configure ServeOpts. The zero value gives the defaults of
// Serve: DefaultIdleTimeout, DefaultWriteTimeout, DefaultMaxServerConns.
type ServeOptions struct {
	// IdleTimeout bounds the wait for the next request on a connection;
	// negative disables the deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds sending one response frame; negative disables.
	WriteTimeout time.Duration
	// MaxConns bounds concurrently handled connections (0 =
	// DefaultMaxServerConns, negative = no bound). A connection beyond the
	// cap is answered with one <error> frame (ErrServerBusy) and closed —
	// refused cleanly rather than accepted and starved, so a client sees a
	// structured refusal instead of a hang.
	MaxConns int
}

// Serve starts serving on the listener with the default idle and write
// deadlines and returns immediately; call Close to stop. Each connection
// handles a sequence of requests.
func Serve(ln net.Listener, exp Exported) *Server {
	return ServeOpts(ln, exp, ServeOptions{})
}

// ServeWith is Serve with explicit connection deadlines: idle bounds the
// wait for the next request on a connection, write bounds sending one
// response. A zero duration disables the corresponding deadline.
func ServeWith(ln net.Listener, exp Exported, idle, write time.Duration) *Server {
	opts := ServeOptions{IdleTimeout: idle, WriteTimeout: write}
	if idle == 0 {
		opts.IdleTimeout = -1
	}
	if write == 0 {
		opts.WriteTimeout = -1
	}
	return ServeOpts(ln, exp, opts)
}

// ServeOpts is the fully configurable Serve.
func ServeOpts(ln net.Listener, exp Exported, opts ServeOptions) *Server {
	idle := opts.IdleTimeout
	if idle == 0 {
		idle = DefaultIdleTimeout
	} else if idle < 0 {
		idle = 0
	}
	write := opts.WriteTimeout
	if write == 0 {
		write = DefaultWriteTimeout
	} else if write < 0 {
		write = 0
	}
	maxConns := opts.MaxConns
	if maxConns == 0 {
		maxConns = DefaultMaxServerConns
	}
	s := &Server{Exp: exp, ln: ln, idle: idle, write: write}
	if maxConns > 0 {
		s.slots = make(chan struct{}, maxConns)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			if s.slots != nil {
				select {
				case s.slots <- struct{}{}:
				default:
					// At the cap: refuse with a structured frame instead of
					// pinning another handler goroutine. The writer goroutine
					// is bounded by the write deadline, not by client
					// behaviour.
					s.refused.Add(1)
					s.wg.Add(1)
					go func() {
						defer s.wg.Done()
						defer conn.Close()
						if s.write > 0 {
							conn.SetWriteDeadline(time.Now().Add(s.write))
						}
						_ = WriteFrame(conn, errorXML("%s", ErrServerBusy))
					}()
					continue
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				defer func() {
					if s.slots != nil {
						<-s.slots
					}
				}()
				s.handle(conn)
			}()
		}
	}()
	return s
}

// Refused reports how many connections the server turned away at its
// connection cap.
func (s *Server) Refused() int64 { return s.refused.Load() }

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() {
	s.ln.Close()
	s.wg.Wait()
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) handle(conn net.Conn) {
	for {
		if s.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		req, err := ReadFrame(conn)
		if err != nil {
			return // connection closed or idle too long
		}
		if isStreamRequest(req) {
			// Multi-frame response: header, row chunks, terminal frame.
			if !s.serveStream(conn, req) {
				return // a frame write failed: the client is gone
			}
			continue
		}
		resp := s.respond(req)
		if s.write > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.write))
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

func errorXML(format string, args ...any) string {
	n := data.Elem("error")
	n.Add(data.Text("@msg", fmt.Sprintf(format, args...)))
	return xmlenc.Serialize(n)
}

func (s *Server) respond(req string) string {
	n, err := xmlenc.Parse(req)
	if err != nil {
		return errorXML("bad request: %v", err)
	}
	if s.Exp.Obs == nil {
		resp, _, _ := s.answer(n, false)
		return resp
	}
	// One span per handled request, carrying the caller's trace id when the
	// frame was tagged — the wrapper-side half of a distributed trace.
	traceID := attr(n, "trace")
	sp := s.Exp.Obs.StartRequest(n.Label, traceID)
	resp, rows, aerr := s.answer(n, traceID != "")
	s.Exp.Obs.EndRequest(sp, rows, aerr)
	return resp
}

// obsStamp attaches the wrapper-side evaluation time to a traced response
// root; the client folds it back into the calling operator's span.
func obsStamp(n *data.Node, elapsed time.Duration) {
	n.Add(data.Text("@obs-ns", fmt.Sprint(elapsed.Nanoseconds())))
}

// answer serves one parsed request. traced asks fetch/push/pushbatch
// responses to carry the obs-ns evaluation-time stamp. rows is the number
// of result rows shipped (-1 when the request has no tabular result) and
// err the failure reported to the client, both for the observer.
func (s *Server) answer(n *data.Node, traced bool) (resp string, rows int, err error) {
	switch n.Label {
	case "hello":
		resp := data.Elem("wrapper")
		resp.Add(data.Text("@name", s.Exp.Source.Name()))
		docs := ""
		for i, d := range s.Exp.Source.Documents() {
			if i > 0 {
				docs += " "
			}
			docs += d
		}
		resp.Add(data.Text("@docs", docs))
		return xmlenc.Serialize(resp), -1, nil
	case "interface-request":
		if s.Exp.Interface == nil {
			return errorXML("no interface exported"), -1, errors.New("no interface exported")
		}
		return xmlenc.Serialize(capability.ToXML(s.Exp.Interface)), -1, nil
	case "structures-request":
		resp := data.Elem("structures")
		for doc, ref := range s.Exp.Structures {
			entry := data.Elem("structure")
			entry.Add(data.Text("@doc", doc))
			entry.Add(data.Text("@pattern", ref.Pattern))
			entry.Add(pattern.ModelToXML(ref.Model))
			resp.Add(entry)
		}
		return xmlenc.Serialize(resp), -1, nil
	case "fetch":
		doc := attr(n, "doc")
		start := time.Now()
		forest, err := s.Exp.Source.Fetch(doc)
		if err != nil {
			return errorXML("fetch %s: %v", doc, err), -1, err
		}
		resp := data.Elem("forest")
		resp.Kids = append(resp.Kids, forest...)
		if traced {
			obsStamp(resp, time.Since(start))
		}
		return xmlenc.Serialize(resp), len(forest), nil
	case "push":
		planNode := n.Child("plan")
		if planNode == nil {
			return errorXML("push without plan"), -1, errors.New("push without plan")
		}
		plan, err := algebra.PlanFromXML(firstElem(planNode))
		if err != nil {
			return errorXML("push plan: %v", err), -1, err
		}
		params := map[string]tab.Cell{}
		if pn := n.Child("params"); pn != nil {
			if tn := firstElem(pn); tn != nil {
				pt, err := tab.FromXML(tn)
				if err != nil {
					return errorXML("push params: %v", err), -1, err
				}
				if pt.Len() > 0 {
					for i, c := range pt.Cols {
						params[c] = pt.Rows[0][i]
					}
				}
			}
		}
		start := time.Now()
		res, err := s.Exp.Source.Push(plan, params)
		if err != nil {
			return errorXML("push: %v", err), -1, err
		}
		if traced {
			tn := tab.ToXML(res)
			obsStamp(tn, time.Since(start))
			return xmlenc.Serialize(tn), res.Len(), nil
		}
		return tab.Marshal(res), res.Len(), nil
	case "pushbatch":
		planNode := n.Child("plan")
		if planNode == nil {
			return errorXML("pushbatch without plan"), -1, errors.New("pushbatch without plan")
		}
		plan, err := algebra.PlanFromXML(firstElem(planNode))
		if err != nil {
			return errorXML("pushbatch plan: %v", err), -1, err
		}
		bn := n.Child("bindings")
		if bn == nil {
			return errorXML("pushbatch without bindings"), -1, errors.New("pushbatch without bindings")
		}
		bt, err := tab.FromXML(firstElem(bn))
		if err != nil {
			return errorXML("pushbatch bindings: %v", err), -1, err
		}
		bindings := make([]map[string]tab.Cell, bt.Len())
		for i, r := range bt.Rows {
			m := make(map[string]tab.Cell, len(bt.Cols))
			for j, col := range bt.Cols {
				m[col] = r[j]
			}
			bindings[i] = m
		}
		start := time.Now()
		var res []*tab.Tab
		if bs, ok := s.Exp.Source.(algebra.BatchSource); ok {
			res, err = bs.PushBatch(plan, bindings)
			if err == nil && len(res) != len(bindings) {
				err = fmt.Errorf("source returned %d results for %d bindings", len(res), len(bindings))
			}
		} else {
			// The source has no native batch evaluation; looping here still
			// collapses the exchange to one round trip.
			res = make([]*tab.Tab, len(bindings))
			for i, b := range bindings {
				if res[i], err = s.Exp.Source.Push(plan, b); err != nil {
					err = fmt.Errorf("binding %d: %w", i, err)
					break
				}
			}
		}
		if err != nil {
			return errorXML("pushbatch: %v", err), -1, err
		}
		resp := data.Elem("batch")
		rows = 0
		for _, t := range res {
			rows += t.Len()
			resp.Add(tab.ToXML(t))
		}
		if traced {
			obsStamp(resp, time.Since(start))
		}
		return xmlenc.Serialize(resp), rows, nil
	default:
		return errorXML("unknown request <%s>", n.Label), -1, fmt.Errorf("unknown request <%s>", n.Label)
	}
}

func attr(n *data.Node, name string) string {
	if c := n.Child("@" + name); c != nil && c.Atom != nil {
		return c.Atom.S
	}
	return ""
}

func firstElem(n *data.Node) *data.Node {
	for _, k := range n.Kids {
		if len(k.Label) > 0 && k.Label[0] != '@' {
			return k
		}
	}
	return nil
}

// Client is the mediator-side proxy for a remote wrapper; it implements
// algebra.Source (and algebra.ContextSource) over a small pool of TCP
// connections. A serial caller reuses one connection; the parallel
// execution engine's overlapping requests grow the pool on demand up to its
// bound, so concurrent DJoin pushes really overlap at the wrapper instead
// of serializing on a single socket.
type Client struct {
	addr string
	name string
	docs []string

	// dial opens one new connection; Options.WrapConn (fault injection)
	// hooks it. maxIdle bounds how long a parked connection stays
	// reusable; retry is the transport retry policy.
	dial    func(ctx context.Context) (net.Conn, error)
	maxIdle time.Duration
	retry   RetryPolicy

	// retries and redials count transport-level retry work; the mediator
	// drains them into algebra.Stats after every source call (see
	// TakeRetryStats).
	retries atomic.Int64
	redials atomic.Int64

	// rng drives backoff jitter, deterministic under the policy's seed.
	rngMu sync.Mutex
	rng   *rand.Rand

	// tokens bounds in-flight requests: one token is held per request.
	tokens chan struct{}
	// idle parks connections between requests for reuse, stamped with the
	// park time so conns idle past maxIdle are dropped, not reused.
	idle chan pooled

	// encs memoizes canonical plan encodings by plan node, so a DJoin
	// pushing one inner plan many times (chunked batches, or the per-row
	// fallback) encodes it once instead of once per request.
	encMu sync.Mutex
	encs  map[algebra.Op]string

	// noStream memoizes a wrapper's lack of stream support: after one
	// "unknown request" probe failure every later FetchStream/PushStream
	// call goes straight to the one-shot protocol without re-probing.
	noStream atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]bool // every live connection, for Close
	closed bool
}

// planEncCacheSize bounds the per-client encoding memo; queries push a
// handful of distinct plans, so the bound exists only as a leak guard.
const planEncCacheSize = 128

func (c *Client) encodePlan(plan algebra.Op) (string, error) {
	c.encMu.Lock()
	if s, ok := c.encs[plan]; ok {
		c.encMu.Unlock()
		return s, nil
	}
	c.encMu.Unlock()
	n, err := algebra.PlanToXML(plan)
	if err != nil {
		return "", err
	}
	s := xmlenc.Serialize(n)
	c.encMu.Lock()
	if len(c.encs) >= planEncCacheSize {
		c.encs = make(map[algebra.Op]string) // plans die with their query: reset wholesale
	}
	c.encs[plan] = s
	c.encMu.Unlock()
	return s, nil
}

// pooled is a parked connection stamped with its park time.
type pooled struct {
	conn   net.Conn
	parked time.Time
}

// Dial connects to a wrapper with the default pool bound and performs the
// hello exchange.
func Dial(addr string) (*Client, error) { return DialPool(addr, DefaultMaxConns) }

// DialPool is Dial with an explicit connection-pool bound (minimum 1).
func DialPool(addr string, maxConns int) (*Client, error) {
	return DialPoolContext(context.Background(), addr, maxConns)
}

// DialPoolContext is DialPool under a cancellation context: both the TCP
// dial and the hello exchange respect the context's deadline, so startup
// against a black-holed or dead address fails when the deadline passes
// instead of hanging for the OS connect timeout.
func DialPoolContext(ctx context.Context, addr string, maxConns int) (*Client, error) {
	if maxConns < 1 {
		maxConns = 1
	}
	return DialWith(ctx, addr, Options{MaxConns: maxConns})
}

// Options configure DialWith.
type Options struct {
	// MaxConns bounds the connection pool (0 = DefaultMaxConns, minimum 1).
	MaxConns int
	// Retry overrides the transport retry policy; nil means
	// DefaultRetryPolicy, and a policy with MaxAttempts <= 1 disables
	// retrying.
	Retry *RetryPolicy
	// MaxConnIdle drops pooled connections parked longer than this
	// instead of reusing them (0 = DefaultMaxConnIdle, negative = no
	// bound). Keep it below the server's idle deadline.
	MaxConnIdle time.Duration
	// WrapConn, when non-nil, wraps every new connection — the fault
	// injection hook (see internal/faults).
	WrapConn func(net.Conn) net.Conn
}

// DialWith is the fully configurable dial: pool bound, retry policy,
// pooled-connection freshness bound and connection wrapping.
func DialWith(ctx context.Context, addr string, opts Options) (*Client, error) {
	maxConns := opts.MaxConns
	if maxConns == 0 {
		maxConns = DefaultMaxConns
	}
	if maxConns < 1 {
		maxConns = 1
	}
	retry := DefaultRetryPolicy
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	maxIdle := opts.MaxConnIdle
	if maxIdle == 0 {
		maxIdle = DefaultMaxConnIdle
	}
	if maxIdle < 0 {
		maxIdle = 0 // explicit "no freshness bound"
	}
	c := &Client{
		addr:    addr,
		maxIdle: maxIdle,
		retry:   retry,
		rng:     rand.New(rand.NewSource(retry.Seed)),
		tokens:  make(chan struct{}, maxConns),
		idle:    make(chan pooled, maxConns),
		encs:    map[algebra.Op]string{},
		conns:   map[net.Conn]bool{},
	}
	wrap := opts.WrapConn
	c.dial = func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if wrap != nil {
			conn = wrap(conn)
		}
		return conn, nil
	}
	resp, err := c.roundTripCtx(ctx, `<hello/>`)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.name = attr(resp, "name")
	if d := attr(resp, "docs"); d != "" {
		c.docs = splitSpace(d)
	}
	return c, nil
}

// TakeRetryStats drains and returns the transport retry counters
// accumulated since the last call: retries are backed-off re-attempts of
// failed exchanges, redials the transparent redials of stale pooled
// connections. Implements algebra.RetryReporter, so evaluation folds these
// into Stats after every source call without double-counting pushes.
func (c *Client) TakeRetryStats() (retries, redials int) {
	return int(c.retries.Swap(0)), int(c.redials.Swap(0))
}

// acquire obtains a connection for one request: it waits for an in-flight
// slot (or context cancellation), then reuses a parked connection that is
// still fresh, or dials a new one. reused tells the caller the connection
// may have been closed by the server while parked (the stale-connection
// redial in roundTripCtx).
func (c *Client) acquire(ctx context.Context) (conn net.Conn, reused bool, err error) {
	select {
	case c.tokens <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	for {
		var p pooled
		select {
		case p = <-c.idle:
		default:
		}
		if p.conn == nil {
			break
		}
		// A request racing Close must get the explicit closed error on
		// the idle-reuse path too, not a confusing EOF from the conn
		// Close just closed under us.
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			c.drop(p.conn)
			<-c.tokens
			return nil, false, ErrClientClosed
		}
		// A conn parked past the freshness bound has likely been hung up
		// on by the server's idle deadline; drop it and keep draining.
		if c.maxIdle > 0 && time.Since(p.parked) > c.maxIdle {
			c.drop(p.conn)
			continue
		}
		return p.conn, true, nil
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		<-c.tokens
		return nil, false, ErrClientClosed
	}
	nc, err := c.dial(ctx)
	if err != nil {
		<-c.tokens
		return nil, false, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		<-c.tokens
		return nil, false, ErrClientClosed
	}
	c.conns[nc] = true
	c.mu.Unlock()
	return nc, false, nil
}

// release parks a healthy connection for reuse and frees its slot.
func (c *Client) release(conn net.Conn) {
	conn.SetDeadline(time.Time{})
	select {
	case c.idle <- pooled{conn: conn, parked: time.Now()}:
	default: // cannot happen: idle capacity equals the slot count
		c.drop(conn)
	}
	<-c.tokens
}

// discard closes a connection whose request failed and frees its slot.
func (c *Client) discard(conn net.Conn) {
	c.drop(conn)
	<-c.tokens
}

func (c *Client) drop(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	delete(c.conns, conn)
	c.mu.Unlock()
}

func splitSpace(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// Close closes every pooled connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	var err error
	for conn := range c.conns {
		if e := conn.Close(); e != nil && err == nil {
			err = e
		}
	}
	c.conns = map[net.Conn]bool{}
	c.mu.Unlock()
	for {
		select {
		case <-c.idle: // already closed above; just unpark
		default:
			return err
		}
	}
}

func (c *Client) roundTrip(req string) (*data.Node, error) {
	return c.roundTripCtx(context.Background(), req)
}

// countReader counts the bytes delivered through it: the stale-connection
// redial must know whether any response byte had arrived when an exchange
// failed.
type countReader struct {
	r io.Reader
	n int
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// exchange performs one request/response attempt under a cancellation
// context: the context's deadline becomes the connection deadline, and a
// cancellation unblocks any pending read immediately, so a dead wrapper
// cannot hang a query. It reports whether the connection came reused from
// the idle pool and how many response bytes had arrived when the exchange
// failed — a reused conn failing with zero response bytes is the
// stale-connection signature.
func (c *Client) exchange(ctx context.Context, req string) (resp string, reused bool, got int, err error) {
	conn, reused, err := c.acquire(ctx)
	if err != nil {
		return "", reused, 0, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	watchDone := make(chan struct{})
	watchExit := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			defer close(watchExit)
			select {
			case <-ctx.Done():
				conn.SetDeadline(time.Unix(1, 0)) // in the past: fail pending I/O now
			case <-watchDone:
			}
		}()
	} else {
		close(watchExit)
	}
	cr := &countReader{r: conn}
	if err = WriteFrame(conn, req); err == nil {
		resp, err = ReadFrame(cr)
	}
	close(watchDone)
	// Join the watchdog before deciding the connection's fate: a
	// late-scheduled watchdog that sees the cancellation after the exchange
	// completed would otherwise poison the deadline of a connection already
	// parked in the pool — or already acquired by an unrelated request,
	// failing it spuriously and churning its slot.
	<-watchExit
	if err == nil && ctx.Err() != nil {
		// The exchange raced a cancellation; the watchdog may have poisoned
		// the connection's deadline, so don't reuse it.
		err = ctx.Err()
	}
	if err != nil {
		c.discard(conn)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return "", reused, cr.n, ctxErr
		}
		// The connection deadline came from the context; it can fire a tick
		// before the context's own timer does.
		var ne net.Error
		if _, hasDeadline := ctx.Deadline(); hasDeadline && errors.As(err, &ne) && ne.Timeout() {
			return "", reused, cr.n, context.DeadlineExceeded
		}
		return "", reused, cr.n, err
	}
	c.release(conn)
	return resp, reused, cr.n, nil
}

// jitterRand draws one jitter sample from the client's seeded stream.
func (c *Client) jitterRand() float64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64()
}

// roundTripCtx performs one request/response exchange under a cancellation
// context, transparently retrying transport failures: every request the
// client sends is a read-only query (hello, fetch, push, pushbatch), hence
// idempotent. Retry k waits BaseDelay·2^(k-1), jittered and capped at
// MaxDelay, and gives up early when the context's remaining budget cannot
// cover the wait. Only transport-class failures retry (IsRetryable);
// server <error> frames and context cancellation return immediately.
//
// One failure mode is handled without burning a retry attempt: a pooled
// connection reused after an idle gap may have been closed by the server's
// idle deadline, in which case the first request on it fails before any
// response byte arrives. That exchange redials-and-retries once
// immediately (counted in redials, not retries).
func (c *Client) roundTripCtx(ctx context.Context, req string) (*data.Node, error) {
	redialBudget := 1
	for attempt := 1; ; {
		resp, reused, got, err := c.exchange(ctx, req)
		if err == nil {
			n, perr := xmlenc.Parse(resp)
			if perr == nil {
				if n.Label == "error" {
					return nil, &RemoteError{Msg: attr(n, "msg")}
				}
				return n, nil
			}
			// The frame arrived whole but its XML is broken: transport
			// corruption, retryable like any other transport failure.
			err = &CorruptError{Err: perr}
		}
		if !IsRetryable(err) {
			return nil, err
		}
		if reused && got == 0 && redialBudget > 0 {
			// Stale pooled connection: the server hung up while the conn
			// was parked and the request never got an answer started.
			// Redial immediately, once, without consuming a retry.
			redialBudget--
			c.redials.Add(1)
			continue
		}
		if attempt >= c.retry.MaxAttempts {
			return nil, err
		}
		d := c.retry.backoff(attempt-1, c.jitterRand())
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
			return nil, err // the context budget cannot cover the wait
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		attempt++
		c.retries.Add(1)
	}
}

// Name implements algebra.Source.
func (c *Client) Name() string { return c.name }

// Addr reports the wrapper address the client dials — replica routing and
// deployment tooling use it to label otherwise same-named replicas.
func (c *Client) Addr() string { return c.addr }

// Documents implements algebra.Source.
func (c *Client) Documents() []string { return append([]string(nil), c.docs...) }

// Fetch implements algebra.Source.
func (c *Client) Fetch(doc string) (data.Forest, error) {
	return c.FetchContext(context.Background(), doc)
}

// FetchContext implements algebra.ContextSource: Fetch under a cancellation
// context. When the context carries a trace span (obs.WithSpan), the frame
// is tagged with the trace id so the wrapper's request span joins the
// caller's trace, and the wrapper-side evaluation time comes back as an
// annotation.
func (c *Client) FetchContext(ctx context.Context, doc string) (data.Forest, error) {
	req := data.Elem("fetch")
	req.Add(data.Text("@doc", doc))
	if id := obs.TraceID(ctx); id != "" {
		req.Add(data.Text("@trace", id))
	}
	resp, err := c.roundTripCtx(ctx, xmlenc.Serialize(req))
	if err != nil {
		return nil, err
	}
	if resp.Label != "forest" {
		return nil, fmt.Errorf("wire: unexpected response <%s>", resp.Label)
	}
	c.annotateWrapperTime(ctx, resp)
	// XML carries atoms as text; restore numeric/boolean typing so that
	// mediator-side predicates (e.g. $y > 1800) behave as they do against
	// an in-process wrapper. Attribute children of the response root (the
	// obs-ns stamp) are frame metadata, not trees of the forest.
	out := make(data.Forest, 0, len(resp.Kids))
	for _, n := range resp.Kids {
		if strings.HasPrefix(n.Label, "@") {
			continue
		}
		out = append(out, xmlenc.InferAtoms(n))
	}
	return out, nil
}

// appendParams writes the single-row parameter table shared by push and
// pushstream requests.
func appendParams(req *strings.Builder, params map[string]tab.Cell) {
	if len(params) == 0 {
		return
	}
	cols := make([]string, 0, len(params))
	for k := range params {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	pt := tab.New(cols...)
	row := make(tab.Row, len(cols))
	for i, k := range cols {
		row[i] = params[k]
	}
	pt.AddRow(row)
	req.WriteString("<params>")
	req.WriteString(tab.Marshal(pt))
	req.WriteString("</params>")
}

// annotateWrapperTime folds a traced response's wrapper-side evaluation
// time (the obs-ns stamp) into the calling operator's span.
func (c *Client) annotateWrapperTime(ctx context.Context, resp *data.Node) {
	sp := obs.SpanFrom(ctx)
	if sp == nil {
		return
	}
	if v := attr(resp, "obs-ns"); v != "" {
		sp.Annotate("wrapper_ns", v)
	}
}

// Push implements algebra.Source.
func (c *Client) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	return c.PushContext(context.Background(), plan, params)
}

// PushContext implements algebra.ContextSource: Push under a cancellation
// context. The plan's canonical encoding comes from the per-client memo, so
// repeated pushes of one plan (a DJoin's per-row fallback) encode it once.
func (c *Client) PushContext(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	enc, err := c.encodePlan(plan)
	if err != nil {
		return nil, err
	}
	var req strings.Builder
	if id := obs.TraceID(ctx); id != "" {
		fmt.Fprintf(&req, `<push trace="%s"><plan>`, xmlenc.Escape(id))
	} else {
		req.WriteString("<push><plan>")
	}
	req.WriteString(enc)
	req.WriteString("</plan>")
	appendParams(&req, params)
	req.WriteString("</push>")
	resp, err := c.roundTripCtx(ctx, req.String())
	if err != nil {
		return nil, err
	}
	c.annotateWrapperTime(ctx, resp)
	return tab.FromXML(resp)
}

// PushBatch implements algebra.BatchSource.
func (c *Client) PushBatch(plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	return c.PushBatchContext(context.Background(), plan, bindings)
}

// PushBatchContext implements algebra.BatchSource: the plan ships once with
// one binding row per parameter set, and the wrapper answers with an
// indexed result set — all in a single round trip. A variable absent from
// some bindings (hand-rolled calls only; DJoin batches bind uniformly)
// ships as an explicit null.
func (c *Client) PushBatchContext(ctx context.Context, plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	if len(bindings) == 0 {
		return nil, nil
	}
	enc, err := c.encodePlan(plan)
	if err != nil {
		return nil, err
	}
	colSet := map[string]bool{}
	for _, b := range bindings {
		for k := range b {
			colSet[k] = true
		}
	}
	cols := make([]string, 0, len(colSet))
	for k := range colSet {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	bt := tab.New(cols...)
	for _, b := range bindings {
		row := make(tab.Row, len(cols))
		for i, k := range cols {
			if cell, ok := b[k]; ok {
				row[i] = cell
			} else {
				row[i] = tab.Null()
			}
		}
		bt.AddRow(row)
	}
	var req strings.Builder
	if id := obs.TraceID(ctx); id != "" {
		fmt.Fprintf(&req, `<pushbatch trace="%s"><plan>`, xmlenc.Escape(id))
	} else {
		req.WriteString("<pushbatch><plan>")
	}
	req.WriteString(enc)
	req.WriteString("</plan><bindings>")
	req.WriteString(tab.Marshal(bt))
	req.WriteString("</bindings></pushbatch>")
	resp, err := c.roundTripCtx(ctx, req.String())
	if err != nil {
		return nil, err
	}
	if resp.Label != "batch" {
		return nil, fmt.Errorf("wire: unexpected response <%s>", resp.Label)
	}
	c.annotateWrapperTime(ctx, resp)
	out := make([]*tab.Tab, 0, len(bindings))
	for _, k := range resp.Kids {
		if k.Label != "tab" {
			continue
		}
		t, err := tab.FromXML(k)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(out) != len(bindings) {
		return nil, fmt.Errorf("wire: batch of %d results for %d bindings", len(out), len(bindings))
	}
	return out, nil
}

// ImportInterface fetches the wrapper's capability interface. Transport
// and remote errors pass through unwrapped (a RemoteError means the source
// legitimately exports no interface); a malformed description fails with
// the source named, so a bad export is diagnosed at import time.
func (c *Client) ImportInterface() (*capability.Interface, error) {
	resp, err := c.roundTrip(`<interface-request/>`)
	if err != nil {
		return nil, err
	}
	iface, err := capability.FromXML(resp)
	if err != nil {
		return nil, fmt.Errorf("wire: source %s at %s: malformed interface description: %w", c.name, c.addr, err)
	}
	return iface, nil
}

// ImportStructures fetches the wrapper's structural models.
func (c *Client) ImportStructures() (map[string]StructureRef, error) {
	resp, err := c.roundTrip(`<structures-request/>`)
	if err != nil {
		return nil, err
	}
	out := map[string]StructureRef{}
	for _, k := range resp.Kids {
		if k.Label != "structure" {
			continue
		}
		me := k.Child("model")
		if me == nil {
			return nil, fmt.Errorf("wire: structure without model")
		}
		m, err := pattern.ModelFromXML(me)
		if err != nil {
			return nil, err
		}
		out[attr(k, "doc")] = StructureRef{Model: m, Pattern: attr(k, "pattern")}
	}
	return out, nil
}
