package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/tab"
	"repro/internal/xmlenc"
)

// drainForest pulls a forest cursor to exhaustion.
func drainForest(t *testing.T, cur algebra.ForestCursor) data.Forest {
	t.Helper()
	defer cur.Close()
	var out data.Forest
	for {
		f, err := cur.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f...)
	}
}

func TestFetchStreamMatchesFetch(t *testing.T) {
	srv, ow := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cur, err := c.FetchStream(context.Background(), "artifacts")
	if err != nil {
		t.Fatal(err)
	}
	streamed := drainForest(t, cur)
	local, err := ow.Fetch("artifacts")
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(local) {
		t.Fatalf("streamed %d trees, local %d", len(streamed), len(local))
	}
	if streamed[0].Label != "set" || len(streamed[0].Kids) != 3 {
		t.Errorf("streamed extent = %v", streamed[0])
	}
	// Server-side failures arrive as a clean error header.
	if _, err := c.FetchStream(context.Background(), "ghost"); err == nil {
		t.Error("stream fetch of unknown doc must fail")
	}
}

func TestPushStreamMatchesPush(t *testing.T) {
	srv, ow := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]`)},
		Pred: algebra.MustParseExpr(`$y > 1800`),
	}
	cur, err := c.PushStream(context.Background(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := tab.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	local, err := ow.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.EqualUnordered(local) {
		t.Errorf("streamed:\n%s\nlocal:\n%s", streamed, local)
	}
	badPlan := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class[ artifact.tuple[ ghost: $g ] ] ]`)}
	if _, err := c.PushStream(context.Background(), badPlan, nil); err == nil {
		t.Error("stream push of unsupported plan must fail")
	}
}

// oneShotProxy fronts a real wrapper server but behaves like a pre-streaming
// wrapper: stream requests are refused (or sabotaged), everything else is
// relayed frame for frame. streamReqs counts the stream requests that
// reached it, so tests can assert the client's fallback memo.
type oneShotProxy struct {
	t          *testing.T
	backend    string
	ln         net.Listener
	streamReqs atomic.Int32
	// onStream handles a stream request on the client conn; nil means
	// answer the "unknown request" refusal an old wrapper would send.
	onStream func(conn net.Conn, req *data.Node)
}

func startOneShotProxy(t *testing.T, backend string, onStream func(net.Conn, *data.Node)) *oneShotProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &oneShotProxy{t: t, backend: backend, ln: ln, onStream: onStream}
	go p.serve()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *oneShotProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *oneShotProxy) handle(conn net.Conn) {
	defer conn.Close()
	back, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer back.Close()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if isStreamRequest(req) {
			p.streamReqs.Add(1)
			n, perr := xmlenc.Parse(req)
			if perr != nil {
				return
			}
			if p.onStream != nil {
				p.onStream(conn, n)
				continue
			}
			if WriteFrame(conn, errorXML("unknown request <%s>", n.Label)) != nil {
				return
			}
			continue
		}
		if WriteFrame(back, req) != nil {
			return
		}
		resp, err := ReadFrame(back)
		if err != nil {
			return
		}
		if WriteFrame(conn, resp) != nil {
			return
		}
	}
}

func TestStreamFallsBackToOneShot(t *testing.T) {
	// Against a wrapper predating the stream protocol, FetchStream and
	// PushStream must still deliver the full result (via the one-shot
	// protocol) and must probe the wrapper exactly once.
	srv, ow := serveO2(t)
	proxy := startOneShotProxy(t, srv.Addr(), nil)
	c, err := Dial(proxy.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cur, err := c.FetchStream(context.Background(), "artifacts")
	if err != nil {
		t.Fatal(err)
	}
	streamed := drainForest(t, cur)
	local, err := ow.Fetch("artifacts")
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(local) {
		t.Fatalf("fallback fetch: %d trees, want %d", len(streamed), len(local))
	}
	if got := proxy.streamReqs.Load(); got != 1 {
		t.Fatalf("stream probes before memo = %d, want 1", got)
	}
	// The refusal is memoized: no further stream request leaves the client.
	plan := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t ] ] ]`)}
	pcur, err := c.PushStream(context.Background(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	pushed, err := tab.Drain(pcur)
	if err != nil {
		t.Fatal(err)
	}
	localPush, err := ow.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pushed.EqualUnordered(localPush) {
		t.Errorf("fallback push rows differ:\n%s\nvs:\n%s", pushed, localPush)
	}
	if _, err := c.FetchStream(context.Background(), "artifacts"); err != nil {
		t.Fatal(err)
	}
	if got := proxy.streamReqs.Load(); got != 1 {
		t.Errorf("stream probes after memo = %d, want still 1", got)
	}
}

func TestMidStreamErrorTerminatesCleanly(t *testing.T) {
	// A wrapper failing mid-stream reports an <error> frame after payload
	// chunks: the consumer gets the typed remote error, and the client
	// survives to serve later one-shot traffic on the same pool.
	srv, _ := serveO2(t)
	proxy := startOneShotProxy(t, srv.Addr(), func(conn net.Conn, req *data.Node) {
		if WriteFrame(conn, "<streamhead/>") != nil {
			return
		}
		f := data.Elem("forest")
		w := data.Elem("work")
		w.Add(data.Text("title", "Olympia"))
		f.Add(w)
		if WriteFrame(conn, xmlenc.Serialize(f)) != nil {
			return
		}
		WriteFrame(conn, errorXML("disk on fire"))
	})
	c, err := Dial(proxy.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cur, err := c.FetchStream(context.Background(), "artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	first, err := cur.Next()
	if err != nil || len(first) != 1 || first[0].Label != "work" {
		t.Fatalf("first batch = %v, %v; want the one work tree", first, err)
	}
	_, err = cur.Next()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("mid-stream failure = %v, want RemoteError", err)
	}
	// The error frame is a clean terminal: the conn went back to the pool
	// and the next one-shot call reuses the intact protocol state.
	if _, err := c.Fetch("artifacts"); err != nil {
		t.Fatalf("one-shot fetch after mid-stream error: %v", err)
	}
}
