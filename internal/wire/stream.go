// Streamed protocol variants: fetchstream and pushstream deliver large
// results as a sequence of bounded frames instead of one monolithic
// response, so neither side ever materializes the full result for the
// wire's sake.
//
// Response framing (every frame still respects MaxFrame):
//
//	<fetchstream doc="works" chunk="128"/> →
//	    <streamhead/>  <forest>…</forest>*  <streamend trees="N"/>
//	<pushstream chunk="128"><plan>…</plan><params>tab</params></pushstream> →
//	    <streamhead>tab(cols only)</streamhead>  <tab>…</tab>*  <streamend rows="N"/>
//
// The header frame arrives before the result is materialized, so the
// client's time-to-first-row tracks the wrapper's, not the transfer of the
// whole result. chunk caps the rows (trees) per frame. A traced streamend
// carries the obs-ns evaluation-time stamp like one-shot responses do. A
// mid-stream failure travels as an <error> frame that cleanly terminates
// the stream; the connection stays usable on both sides. Old wrappers
// answer <error msg="unknown request …"/> to the first stream request, and
// the client falls back to the one-shot forms — memoized per client, so the
// probe is paid once.
package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/tab"
	"repro/internal/xmlenc"
)

// isStreamRequest is a cheap prefix test, so the one-frame request path
// never parses a frame twice.
func isStreamRequest(req string) bool {
	return strings.HasPrefix(req, "<fetchstream") || strings.HasPrefix(req, "<pushstream")
}

// streamChunkSize reads the request's chunk attribute; absent or
// non-positive values fall back to the default chunk.
func streamChunkSize(n *data.Node) int {
	if v := attr(n, "chunk"); v != "" {
		if c, err := strconv.Atoi(v); err == nil && c > 0 {
			return c
		}
	}
	return tab.DefaultStreamChunk
}

// streamWriter writes response frames under the server's write deadline and
// latches the first failure: once the client is gone, every further frame
// is a no-op and the handler tears the connection down.
type streamWriter struct {
	s    *Server
	conn net.Conn
	dead bool
}

func (w *streamWriter) frame(payload string) bool {
	if w.dead {
		return false
	}
	if w.s.write > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.s.write))
	}
	if WriteFrame(w.conn, payload) != nil {
		w.dead = true
	}
	return !w.dead
}

// serveStream answers one fetchstream/pushstream request with a multi-frame
// response and reports whether the connection is still usable afterwards.
func (s *Server) serveStream(conn net.Conn, req string) bool {
	w := &streamWriter{s: s, conn: conn}
	n, err := xmlenc.Parse(req)
	if err != nil {
		w.frame(errorXML("bad request: %v", err))
		return !w.dead
	}
	if s.Exp.Obs == nil {
		s.streamAnswer(w, n, false)
		return !w.dead
	}
	// One span covers the whole stream, first frame to last.
	traceID := attr(n, "trace")
	sp := s.Exp.Obs.StartRequest(n.Label, traceID)
	rows, aerr := s.streamAnswer(w, n, traceID != "")
	s.Exp.Obs.EndRequest(sp, rows, aerr)
	return !w.dead
}

func (s *Server) streamAnswer(w *streamWriter, n *data.Node, traced bool) (rows int, err error) {
	switch n.Label {
	case "fetchstream":
		return s.streamFetch(w, n, traced)
	case "pushstream":
		return s.streamPush(w, n, traced)
	default:
		w.frame(errorXML("unknown request <%s>", n.Label))
		return -1, fmt.Errorf("unknown request <%s>", n.Label)
	}
}

func (s *Server) streamFetch(w *streamWriter, n *data.Node, traced bool) (int, error) {
	doc := attr(n, "doc")
	chunk := streamChunkSize(n)
	start := time.Now()
	var cur algebra.ForestCursor
	var err error
	if ss, ok := s.Exp.Source.(algebra.StreamSource); ok {
		cur, err = ss.FetchStream(context.Background(), doc)
	} else {
		// The source has no native streaming; materialize once server-side
		// and chunk the frames, so the wire and the client stay bounded.
		var forest data.Forest
		if forest, err = s.Exp.Source.Fetch(doc); err == nil {
			cur = algebra.NewSliceForestCursor(forest, chunk)
		}
	}
	if err != nil {
		w.frame(errorXML("fetch %s: %v", doc, err))
		return -1, err
	}
	defer cur.Close() // an abandoned client stops the source-side producer
	if !w.frame("<streamhead/>") {
		return -1, nil
	}
	trees := 0
	for {
		f, nerr := cur.Next()
		if nerr == io.EOF {
			break
		}
		if nerr != nil {
			w.frame(errorXML("fetch %s: %v", doc, nerr))
			return trees, nerr
		}
		for lo := 0; lo < len(f); lo += chunk {
			hi := lo + chunk
			if hi > len(f) {
				hi = len(f)
			}
			fr := data.Elem("forest")
			fr.Kids = append(fr.Kids, f[lo:hi]...)
			if !w.frame(xmlenc.Serialize(fr)) {
				return trees, nil
			}
			trees += hi - lo
		}
	}
	end := data.Elem("streamend")
	end.Add(data.Text("@trees", fmt.Sprint(trees)))
	if traced {
		obsStamp(end, time.Since(start))
	}
	w.frame(xmlenc.Serialize(end))
	return trees, nil
}

func (s *Server) streamPush(w *streamWriter, n *data.Node, traced bool) (int, error) {
	planNode := n.Child("plan")
	if planNode == nil {
		w.frame(errorXML("pushstream without plan"))
		return -1, errors.New("pushstream without plan")
	}
	plan, err := algebra.PlanFromXML(firstElem(planNode))
	if err != nil {
		w.frame(errorXML("pushstream plan: %v", err))
		return -1, err
	}
	params := map[string]tab.Cell{}
	if pn := n.Child("params"); pn != nil {
		if tn := firstElem(pn); tn != nil {
			pt, perr := tab.FromXML(tn)
			if perr != nil {
				w.frame(errorXML("pushstream params: %v", perr))
				return -1, perr
			}
			if pt.Len() > 0 {
				for i, c := range pt.Cols {
					params[c] = pt.Rows[0][i]
				}
			}
		}
	}
	chunk := streamChunkSize(n)
	start := time.Now()
	var cur tab.Cursor
	if ps, ok := s.Exp.Source.(algebra.PushStreamSource); ok {
		cur, err = ps.PushStream(context.Background(), plan, params)
	} else {
		// The source has no native streaming; evaluate once and chunk.
		var res *tab.Tab
		if res, err = s.Exp.Source.Push(plan, params); err == nil {
			cur = tab.NewSliceCursor(res, chunk)
		}
	}
	if err != nil {
		w.frame(errorXML("pushstream: %v", err))
		return -1, err
	}
	defer cur.Close()
	head := data.Elem("streamhead")
	head.Add(tab.ToXML(tab.New(cur.Cols()...)))
	if !w.frame(xmlenc.Serialize(head)) {
		return -1, nil
	}
	rows := 0
	for {
		t, nerr := cur.Next()
		if nerr == io.EOF {
			break
		}
		if nerr != nil {
			w.frame(errorXML("pushstream: %v", nerr))
			return rows, nerr
		}
		for lo := 0; lo < t.Len(); lo += chunk {
			hi := lo + chunk
			if hi > t.Len() {
				hi = t.Len()
			}
			part := &tab.Tab{Cols: t.Cols, Rows: t.Rows[lo:hi:hi]}
			if !w.frame(tab.Marshal(part)) {
				return rows, nil
			}
			rows += hi - lo
		}
	}
	end := data.Elem("streamend")
	end.Add(data.Text("@rows", fmt.Sprint(rows)))
	if traced {
		obsStamp(end, time.Since(start))
	}
	w.frame(xmlenc.Serialize(end))
	return rows, nil
}

// ---------------------------------------------------------------------------
// Client side.

// Compile-time: a remote wrapper client streams on both the fetch and the
// push path.
var (
	_ algebra.StreamSource     = (*Client)(nil)
	_ algebra.PushStreamSource = (*Client)(nil)
)

// clientStream is one in-flight multi-frame response. It pins its pooled
// connection for the stream's whole duration: a clean terminal frame
// (streamend, or a mid-stream <error>) re-pools it, while a transport
// failure or a mid-stream abandon discards it — unread chunk frames would
// poison the next request on that connection.
type clientStream struct {
	c         *Client
	conn      net.Conn
	cr        *countReader
	ctx       context.Context
	stopWatch func()
	head      *data.Node
	end       *data.Node
	done      bool
}

// startStream performs one open attempt: acquire a connection, arm a
// stream-lifetime cancellation watchdog, send the request and read the
// header frame. reused/got feed the caller's stale-connection redial.
func (c *Client) startStream(ctx context.Context, req string) (st *clientStream, reused bool, got int, err error) {
	conn, reused, err := c.acquire(ctx)
	if err != nil {
		return nil, reused, 0, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	// Unlike exchange's per-request watchdog, this one stays armed for the
	// whole stream: a cancellation mid-stream poisons the deadline and
	// unblocks the pending chunk read, so an abandoned stream cannot hang.
	watchDone := make(chan struct{})
	watchExit := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			defer close(watchExit)
			select {
			case <-ctx.Done():
				conn.SetDeadline(time.Unix(1, 0)) // in the past: fail pending I/O now
			case <-watchDone:
			}
		}()
	} else {
		close(watchExit)
	}
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(watchDone)
			<-watchExit
		})
	}
	cr := &countReader{r: conn}
	var first string
	if err = WriteFrame(conn, req); err == nil {
		first, err = ReadFrame(cr)
	}
	if err != nil {
		stop()
		c.discard(conn)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, reused, cr.n, ctxErr
		}
		var ne net.Error
		if _, hasDeadline := ctx.Deadline(); hasDeadline && errors.As(err, &ne) && ne.Timeout() {
			return nil, reused, cr.n, context.DeadlineExceeded
		}
		return nil, reused, cr.n, err
	}
	n, perr := xmlenc.Parse(first)
	if perr != nil {
		stop()
		c.discard(conn)
		return nil, reused, cr.n, &CorruptError{Err: perr}
	}
	switch n.Label {
	case "error":
		// A clean single-frame refusal: exactly one response frame was
		// consumed, so the connection is reusable.
		stop()
		if ctxErr := ctx.Err(); ctxErr != nil {
			c.discard(conn)
			return nil, reused, cr.n, ctxErr
		}
		c.release(conn)
		return nil, reused, cr.n, &RemoteError{Msg: attr(n, "msg")}
	case "streamhead":
		return &clientStream{c: c, conn: conn, cr: cr, ctx: ctx, stopWatch: stop, head: n}, reused, cr.n, nil
	default:
		stop()
		c.discard(conn)
		return nil, reused, cr.n, fmt.Errorf("wire: unexpected stream header <%s>", n.Label)
	}
}

// openStream is startStream under the client's retry policy. Retrying is
// safe only before any payload frame was delivered, which is exactly the
// failure window startStream covers; mid-stream failures surface to the
// consumer instead. The stale-pooled-connection redial works as in
// roundTripCtx.
func (c *Client) openStream(ctx context.Context, req string) (*clientStream, error) {
	redialBudget := 1
	for attempt := 1; ; {
		st, reused, got, err := c.startStream(ctx, req)
		if err == nil {
			return st, nil
		}
		if !IsRetryable(err) {
			return nil, err
		}
		if reused && got == 0 && redialBudget > 0 {
			redialBudget--
			c.redials.Add(1)
			continue
		}
		if attempt >= c.retry.MaxAttempts {
			return nil, err
		}
		d := c.retry.backoff(attempt-1, c.jitterRand())
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
			return nil, err // the context budget cannot cover the wait
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		attempt++
		c.retries.Add(1)
	}
}

// next reads one frame. It returns the chunk frame, or io.EOF after the
// terminal streamend (recorded in s.end), or the mid-stream failure.
func (s *clientStream) next() (*data.Node, error) {
	if s.done {
		return nil, io.EOF
	}
	raw, err := ReadFrame(s.cr)
	if err != nil {
		s.abort()
		if ctxErr := s.ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		var ne net.Error
		if _, hasDeadline := s.ctx.Deadline(); hasDeadline && errors.As(err, &ne) && ne.Timeout() {
			return nil, context.DeadlineExceeded
		}
		return nil, err
	}
	n, perr := xmlenc.Parse(raw)
	if perr != nil {
		s.abort()
		return nil, &CorruptError{Err: perr}
	}
	switch n.Label {
	case "error":
		// The server reported a mid-stream failure and is back at its
		// request loop; the error frame cleanly terminates the stream.
		s.finish(n)
		return nil, &RemoteError{Msg: attr(n, "msg")}
	case "streamend":
		s.finish(n)
		return nil, io.EOF
	}
	return n, nil
}

// finish ends the stream on a clean terminal frame: the wrapper-side
// evaluation time is folded into the caller's span and the connection is
// re-pooled (unless a cancellation raced the last read — the watchdog may
// have poisoned the conn's deadline, so it cannot be reused).
func (s *clientStream) finish(end *data.Node) {
	s.done = true
	s.end = end
	s.stopWatch()
	s.c.annotateWrapperTime(s.ctx, end)
	if s.ctx.Err() != nil {
		s.c.discard(s.conn)
		return
	}
	s.c.release(s.conn)
}

// abort tears the stream down mid-flight; the connection has unread or lost
// frames and is never re-pooled. Idempotent, also the abandon path (Close
// before EOF).
func (s *clientStream) abort() {
	if s.done {
		return
	}
	s.done = true
	s.stopWatch()
	s.c.discard(s.conn)
}

func (s *clientStream) close() error {
	s.abort()
	return nil
}

// isUnknownRequest spots an old wrapper refusing a stream request, the
// fallback trigger.
func isUnknownRequest(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "unknown request")
}

// FetchStream implements algebra.StreamSource: the document's trees arrive
// in bounded chunk frames. Against an old wrapper it falls back to the
// one-shot fetch (memoized), preserving interoperability at the cost of
// materializing — the protocol downgrade is invisible to the caller.
func (c *Client) FetchStream(ctx context.Context, doc string) (algebra.ForestCursor, error) {
	if c.noStream.Load() {
		f, err := c.FetchContext(ctx, doc)
		if err != nil {
			return nil, err
		}
		return algebra.NewSliceForestCursor(f, tab.DefaultStreamChunk), nil
	}
	req := data.Elem("fetchstream")
	req.Add(data.Text("@doc", doc))
	req.Add(data.Text("@chunk", fmt.Sprint(tab.DefaultStreamChunk)))
	if id := obs.TraceID(ctx); id != "" {
		req.Add(data.Text("@trace", id))
	}
	st, err := c.openStream(ctx, xmlenc.Serialize(req))
	if err != nil {
		if isUnknownRequest(err) {
			c.noStream.Store(true)
			f, ferr := c.FetchContext(ctx, doc)
			if ferr != nil {
				return nil, ferr
			}
			return algebra.NewSliceForestCursor(f, tab.DefaultStreamChunk), nil
		}
		return nil, err
	}
	return &wireForestCursor{st: st}, nil
}

type wireForestCursor struct {
	st *clientStream
}

func (c *wireForestCursor) Next() (data.Forest, error) {
	n, err := c.st.next()
	if err != nil {
		return nil, err
	}
	if n.Label != "forest" {
		c.st.abort()
		return nil, fmt.Errorf("wire: unexpected stream frame <%s>", n.Label)
	}
	// Same typing restoration as the one-shot fetch: XML carries atoms as
	// text; attribute kids of the frame root are metadata, not trees.
	out := make(data.Forest, 0, len(n.Kids))
	for _, k := range n.Kids {
		if strings.HasPrefix(k.Label, "@") {
			continue
		}
		out = append(out, xmlenc.InferAtoms(k))
	}
	return out, nil
}

func (c *wireForestCursor) Close() error { return c.st.close() }

// PushStream implements algebra.PushStreamSource: the pushed plan's result
// rows arrive in bounded chunk frames, headed by the column set before the
// first row is produced. Falls back to the one-shot push against an old
// wrapper (memoized).
func (c *Client) PushStream(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (tab.Cursor, error) {
	if c.noStream.Load() {
		t, err := c.PushContext(ctx, plan, params)
		if err != nil {
			return nil, err
		}
		return tab.NewSliceCursor(t, tab.DefaultStreamChunk), nil
	}
	enc, err := c.encodePlan(plan)
	if err != nil {
		return nil, err
	}
	var req strings.Builder
	fmt.Fprintf(&req, `<pushstream chunk="%d"`, tab.DefaultStreamChunk)
	if id := obs.TraceID(ctx); id != "" {
		fmt.Fprintf(&req, ` trace="%s"`, xmlenc.Escape(id))
	}
	req.WriteString("><plan>")
	req.WriteString(enc)
	req.WriteString("</plan>")
	appendParams(&req, params)
	req.WriteString("</pushstream>")
	st, err := c.openStream(ctx, req.String())
	if err != nil {
		if isUnknownRequest(err) {
			c.noStream.Store(true)
			t, perr := c.PushContext(ctx, plan, params)
			if perr != nil {
				return nil, perr
			}
			return tab.NewSliceCursor(t, tab.DefaultStreamChunk), nil
		}
		return nil, err
	}
	ht := firstElem(st.head)
	if ht == nil {
		st.abort()
		return nil, fmt.Errorf("wire: stream header without column table")
	}
	cols, cerr := tab.FromXML(ht)
	if cerr != nil {
		st.abort()
		return nil, cerr
	}
	return &wireTabCursor{st: st, cols: cols.Cols}, nil
}

type wireTabCursor struct {
	st   *clientStream
	cols []string
}

func (c *wireTabCursor) Cols() []string { return append([]string(nil), c.cols...) }

func (c *wireTabCursor) Next() (*tab.Tab, error) {
	n, err := c.st.next()
	if err != nil {
		return nil, err
	}
	if n.Label != "tab" {
		c.st.abort()
		return nil, fmt.Errorf("wire: unexpected stream frame <%s>", n.Label)
	}
	t, terr := tab.FromXML(n)
	if terr != nil {
		c.st.abort()
		return nil, terr
	}
	return t, nil
}

func (c *wireTabCursor) Close() error { return c.st.close() }
