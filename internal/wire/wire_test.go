package wire

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/o2wrap"
	"repro/internal/waiswrap"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "<hello/>"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || got != "<hello/>" {
		t.Errorf("frame = %q, %v", got, err)
	}
	// oversized frames rejected
	big := strings.Repeat("x", MaxFrame+1)
	if err := WriteFrame(&buf, big); err == nil {
		t.Error("oversized write must fail")
	}
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&hdr); err == nil {
		t.Error("oversized read must fail")
	}
	// truncated payload
	var tr bytes.Buffer
	tr.Write([]byte{0, 0, 0, 5, 'a'})
	if _, err := ReadFrame(&tr); err == nil {
		t.Error("truncated frame must fail")
	}
}

// serveO2 starts an O₂ wrapper server on an ephemeral port.
func serveO2(t *testing.T) (*Server, *o2wrap.Wrapper) {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	schema := ow.ExportSchema()
	srv := Serve(ln, Exported{
		Source:    ow,
		Interface: ow.ExportInterface(),
		Structures: map[string]StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		},
	})
	t.Cleanup(srv.Close)
	return srv, ow
}

func serveWais(t *testing.T) (*Server, *waiswrap.Wrapper) {
	t.Helper()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(datagen.PaperWorks()))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Exported{
		Source:    ww,
		Interface: ww.ExportInterface(),
		Structures: map[string]StructureRef{
			"works": {Model: ww.ExportStructure(), Pattern: "Works"},
		},
	})
	t.Cleanup(srv.Close)
	return srv, ww
}

func TestHelloAndImports(t *testing.T) {
	srv, _ := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Name() != "o2artifact" {
		t.Errorf("name = %q", c.Name())
	}
	// Two extents plus their node tables (PR 7).
	if len(c.Documents()) != 4 {
		t.Errorf("docs = %v", c.Documents())
	}
	iface, err := c.ImportInterface()
	if err != nil {
		t.Fatal(err)
	}
	if !iface.HasOperation("bind") || !iface.HasOperation("current_price") {
		t.Error("interface incomplete over the wire")
	}
	sts, err := c.ImportStructures()
	if err != nil {
		t.Fatal(err)
	}
	if sts["artifacts"].Pattern != "Artifact" || sts["artifacts"].Model.Lookup("Artifact") == nil {
		t.Errorf("structures = %+v", sts)
	}
}

func TestRemoteFetchMatchesLocal(t *testing.T) {
	srv, ow := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote, err := c.Fetch("artifacts")
	if err != nil {
		t.Fatal(err)
	}
	local, err := ow.Fetch("artifacts")
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("forest sizes: remote %d local %d", len(remote), len(local))
	}
	// Trees survive the XML round trip up to atom typing: the wire carries
	// strings; compare titles structurally.
	if remote[0].Label != "set" || len(remote[0].Kids) != 3 {
		t.Errorf("remote extent = %v", remote[0])
	}
	if _, err := c.Fetch("ghost"); err == nil {
		t.Error("remote fetch error must propagate")
	}
}

func TestRemotePushMatchesLocal(t *testing.T) {
	srv, ow := serveO2(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]`)},
		Pred: algebra.MustParseExpr(`$y > 1800`),
	}
	remote, err := c.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := ow.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !remote.EqualUnordered(local) {
		t.Errorf("remote:\n%s\nlocal:\n%s", remote, local)
	}
	// error propagation for unsupported plans
	badPlan := &algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ artifact.tuple[ ghost: $g ] ] ]`)}
	if _, err := c.Push(badPlan, nil); err == nil {
		t.Error("remote push error must propagate")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv, _ := serveO2(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, "not xml at all"); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "error") {
		t.Errorf("resp = %q", resp)
	}
	if err := WriteFrame(conn, "<unknown-request/>"); err != nil {
		t.Fatal(err)
	}
	resp, err = ReadFrame(conn)
	if err != nil || !strings.Contains(resp, "unknown request") {
		t.Errorf("resp = %q, %v", resp, err)
	}
}

func TestServerIdleTimeoutDisconnects(t *testing.T) {
	// A client that connects and then goes silent must be disconnected when
	// the idle deadline passes, not pin its handler goroutine forever.
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(ln, Exported{Source: ow}, 100*time.Millisecond, time.Second)
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An active connection keeps working within the idle window.
	if err := WriteFrame(conn, "<hello/>"); err != nil {
		t.Fatal(err)
	}
	if resp, err := ReadFrame(conn); err != nil || !strings.Contains(resp, "o2artifact") {
		t.Fatalf("hello over short-idle server: %q, %v", resp, err)
	}
	// Now stall: the server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := ReadFrame(conn); err == nil {
		t.Fatal("stalled connection was not disconnected")
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("disconnect took %v: idle deadline did not fire", elapsed)
	}
}
