package wire

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/o2wrap"
)

// serveO2Limited starts an O₂ wrapper server with an explicit connection cap.
func serveO2Limited(t *testing.T, maxConns int) *Server {
	t.Helper()
	ow := o2wrap.New("o2artifact", datagen.PaperDB())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeOpts(ln, Exported{Source: ow, Interface: ow.ExportInterface()},
		ServeOptions{MaxConns: maxConns})
	t.Cleanup(srv.Close)
	return srv
}

// TestServerConnCapRefusesExcess pins the inflight-connection bound: with a
// cap of 1, a second concurrent connection is refused with a structured
// <error> frame (a RemoteError client-side, not a hang or a bare reset),
// and once the first connection closes, its slot is reusable.
func TestServerConnCapRefusesExcess(t *testing.T) {
	srv := serveO2Limited(t, 1)

	// First connection occupies the single slot.
	c1, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := WriteFrame(c1, `<hello/>`); err != nil {
		t.Fatal(err)
	}
	if resp, err := ReadFrame(c1); err != nil || resp == "" {
		t.Fatalf("first connection hello failed: %q, %v", resp, err)
	}

	// Second connection must be turned away with the busy frame.
	c2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := ReadFrame(c2)
	if err != nil {
		t.Fatalf("refused connection: want an <error> frame, got %v", err)
	}
	if want := ErrServerBusy; !containsStr(resp, want) {
		t.Fatalf("refusal frame %q does not carry %q", resp, want)
	}
	if got := srv.Refused(); got != 1 {
		t.Fatalf("Refused() = %d, want 1", got)
	}

	// Releasing the slot readmits new connections.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c3.SetDeadline(time.Now().Add(time.Second))
		err = WriteFrame(c3, `<hello/>`)
		var got string
		if err == nil {
			got, err = ReadFrame(c3)
		}
		c3.Close()
		if err == nil && containsStr(got, "wrapper") {
			return // slot freed, server answering again
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: last response %q, err %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerConnCapRefusalIsRemoteError pins the client-side classification:
// a busy refusal surfaces as RemoteError (proof of life — no retry storm,
// no breaker trip), not as a retryable transport failure.
func TestServerConnCapRefusalIsRemoteError(t *testing.T) {
	srv := serveO2Limited(t, 1)

	hold, err := Dial(srv.Addr()) // occupies the only slot with a pooled conn
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()

	_, err = Dial(srv.Addr())
	if err == nil {
		t.Fatal("second Dial beyond the cap must fail")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("refusal error = %v (%T), want RemoteError", err, err)
	}
	if IsRetryable(err) {
		t.Fatal("busy refusal must not be classified retryable")
	}
}

// TestServerConnCapUnderChurn exercises the cap under concurrent
// connect/disconnect churn: no connection hangs, every attempt ends in
// either a served hello or a structured refusal.
func TestServerConnCapUnderChurn(t *testing.T) {
	srv := serveO2Limited(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			if err := WriteFrame(conn, `<hello/>`); err != nil {
				return // raced the refusal close; the refusal frame already settled it
			}
			resp, err := ReadFrame(conn)
			if err != nil {
				return // refused-and-closed connections may reset mid-read
			}
			if !containsStr(resp, "wrapper") && !containsStr(resp, ErrServerBusy) {
				errs <- errors.New("unexpected response: " + resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }
