// Package exec is the mediator's parallel, cancellable execution engine.
// The algebra's recursive Eval is strictly sequential: a DJoin pushes one
// sub-query per outer row and waits for each answer before sending the next
// — pathological over the TCP wrappers of internal/wire, where every push
// is a network round trip (the information-passing cost model of Section
// 5.3). This engine evaluates the same plans with a bounded worker pool:
//
//   - the independent inputs of Join, Union and Intersect evaluate
//     concurrently;
//   - DJoin fans its inner plan out across outer rows with a configurable
//     in-flight bound, each row under its own parameter bindings;
//   - a context.Context threads from Run through algebra.Context into the
//     wire client, so a per-query timeout or cancellation aborts in-flight
//     source I/O instead of hanging the query on a dead wrapper.
//
// Results are deterministic and identical to serial evaluation row for row:
// concurrent units are collected and then combined in plan order (DJoin
// emits per-outer-row results in outer order), which also preserves the
// paper's bag semantics. Counter accounting stays exact because every
// worker accumulates into a forked algebra.Stats that the parent merges
// (per-worker merge instead of shared atomics). Subplans that mint Skolem
// identifiers are the one exception to parallelism: their mint order is
// observable in the output, so the engine serializes any pair of units that
// would both mint (see mintsSkolems).
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/algebra"
	"repro/internal/obs"
	"repro/internal/tab"
)

// Options configure one engine.
type Options struct {
	// Parallelism bounds the number of concurrently evaluating workers.
	// 1 forces serial evaluation (the engine then behaves exactly like the
	// recursive Eval); values below 1 default to GOMAXPROCS.
	Parallelism int
	// FanOut bounds the in-flight inner evaluations of one DJoin. Zero or
	// negative means "use Parallelism". The effective bound is never larger
	// than Parallelism: fan-out workers come from the same pool. With
	// batched pushes it bounds the number of chunks in flight.
	FanOut int
	// Timeout is the per-query deadline applied by Run; zero disables it.
	Timeout time.Duration
	// BatchChunk bounds the binding sets per batched DJoin push; zero means
	// "use the evaluation context's default" (algebra.DefaultBatchChunk).
	// Negative values are configuration errors, rejected by Validate —
	// never silently replaced downstream. Deliberately independent of
	// Parallelism/FanOut so push counts stay identical between serial and
	// parallel runs of the same query.
	BatchChunk int
	// PerRowDJoin restores the one-push-per-outer-row DJoin baseline
	// (no deduplication, no batched pushes); comparison experiments and
	// benchmarks use it to measure what batching saves.
	PerRowDJoin bool
	// CacheSize, when positive, asks the mediator to install a shared
	// wrapper-result cache bounded to this many entries (see
	// algebra.ResultCache). The engine itself does not consume it: the
	// cache must outlive individual queries to be useful.
	CacheSize int
	// AllowPartial enables graceful per-source degradation: when a plan
	// branch fails because a source is unreachable
	// (algebra.UnavailableError — transport failure after retries, or an
	// open circuit breaker), the failure is recorded in the context's
	// PartialReport and the branch contributes no rows, instead of the
	// whole query failing. Degradation happens at Union branches and at
	// the plan root, so a union across sources returns the live sources'
	// rows; a plan rooted entirely in a dead source returns zero rows.
	// Every returned row is still correct — the result is a lower bound.
	AllowPartial bool
	// Trace enables per-operator span collection (see internal/obs): every
	// evaluated operator gets a span under the root the caller attaches to
	// algebra.Context.Trace (the mediator mints one and returns it in
	// Result.Trace), fan-out workers get spans parented to the operator
	// that forked them, and the trace id rides the wire frames so
	// wrapper-side work is attributed to its cause. Off by default;
	// when off the engine's only extra work is a nil check per node.
	Trace bool
	// Stream routes query execution through the chunked streaming path:
	// Mediator.ExecuteContext drains Mediator.StreamContext (bounded
	// memory, identical rows) instead of calling Engine.Run. The engine
	// itself does not consume it — callers pick Run or Stream explicitly.
	Stream bool
	// StreamBuffer bounds the row buffer between the streaming evaluator
	// and the consumer of Mediator.StreamContext (backpressure: producers
	// stall once the buffer is full). Zero means 2×tab.DefaultStreamChunk;
	// negative values are rejected by Validate.
	StreamBuffer int
	// CheckTypes enables wire conformance checking: the mediator infers a
	// pattern type for every operator (internal/typecheck) and installs a
	// validator on the evaluation context that checks each shipped
	// wrapper row against the SourceQuery's inferred type, turning a
	// schema-violating response into a structured error (and a
	// type_violations_total metric) instead of a silently wrong answer.
	// Off by default; the engine itself does not consume it.
	CheckTypes bool
}

// Validate rejects option values that cannot mean anything before they sink
// into an evaluation: chunk and buffer sizes must not be negative (zero is
// the documented "use the default" sentinel; explicit non-positive values
// arriving from flags are rejected at flag-parse time by the consoles).
// Mediator entry points call it on every query, so a bad configuration
// fails loudly at the edge instead of silently running with a substituted
// default deep in the batch evaluator.
func (o Options) Validate() error {
	if o.BatchChunk < 0 {
		return fmt.Errorf("exec: BatchChunk must be positive (or 0 for the default %d), got %d", algebra.DefaultBatchChunk, o.BatchChunk)
	}
	if o.StreamBuffer < 0 {
		return fmt.Errorf("exec: StreamBuffer must be positive (or 0 for the default %d), got %d", 2*tab.DefaultStreamChunk, o.StreamBuffer)
	}
	return nil
}

// Engine evaluates algebra plans with a bounded worker pool. It is safe for
// concurrent use; all queries run through one engine share its pool.
type Engine struct {
	opts Options
	// tokens is the pool of *extra* workers: the goroutine calling Run
	// counts as one worker, so capacity is Parallelism-1. A unit of work
	// forks only when a token is free, otherwise it runs inline — this
	// never deadlocks, however deep the plan.
	tokens chan struct{}
}

// New returns an engine over the given options.
func New(opts Options) *Engine {
	if opts.Parallelism < 1 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.FanOut < 1 || opts.FanOut > opts.Parallelism {
		opts.FanOut = opts.Parallelism
	}
	return &Engine{opts: opts, tokens: make(chan struct{}, opts.Parallelism-1)}
}

// Options reports the engine's effective configuration.
func (e *Engine) Options() Options { return e.opts }

// Run evaluates a plan, applying the engine's timeout and threading the
// context through the evaluation context into the sources. The returned
// rows are identical, in order, to what plan.Eval would produce.
func (e *Engine) Run(ctx context.Context, plan algebra.Op, actx *algebra.Context) (*tab.Tab, error) {
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	ectx := actx.WithContext(ctx)
	if e.opts.BatchChunk > 0 {
		ectx.BatchChunk = e.opts.BatchChunk
	}
	if e.opts.PerRowDJoin {
		ectx.PerRowDJoin = true
	}
	if e.opts.AllowPartial && ectx.Partial == nil {
		// The caller usually pre-attaches a report (to read it back after
		// the run); degrade into a private one otherwise.
		ectx.Partial = algebra.NewPartialReport()
	}
	t, err := e.eval(ctx, plan, ectx)
	if err != nil && e.degrade(ectx, err) {
		// The whole plan roots in unreachable sources: the rows derivable
		// from live sources are exactly none.
		return tab.New(plan.Columns()...), nil
	}
	return t, err
}

// degrade reports whether err is a source-availability failure that
// AllowPartial absorbs; if so it is recorded in the partial report.
func (e *Engine) degrade(actx *algebra.Context, err error) bool {
	if !e.opts.AllowPartial || actx.Partial == nil {
		return false
	}
	var ue *algebra.UnavailableError
	if !errors.As(err, &ue) {
		return false
	}
	actx.Partial.Record(ue.Source, err)
	return true
}

// lit wraps an evaluated input so an operator's own Eval can combine it.
func lit(t *tab.Tab) algebra.Op { return &algebra.Literal{T: t} }

// eval evaluates one plan node, opening a span for it when tracing. The
// span wrapper lives here — not in the operators' Eval — because the engine
// owns the recursion: operators re-dispatched over materialized inputs see
// only Literal children, which are never spanned, so each plan node gets
// exactly one span regardless of which layer evaluates it.
func (e *Engine) eval(ctx context.Context, op algebra.Op, actx *algebra.Context) (*tab.Tab, error) {
	if actx.Trace == nil {
		return e.evalNode(ctx, op, actx)
	}
	if _, ok := op.(*algebra.Literal); ok {
		return e.evalNode(ctx, op, actx)
	}
	sp := actx.Trace.NewChild(algebra.OpKind(op), op.Detail())
	cc := *actx
	cc.Trace = sp
	tctx := obs.WithSpan(ctx, sp)
	cc.Ctx = tctx
	t, err := e.evalNode(tctx, op, &cc)
	rows := -1
	if t != nil {
		rows = t.Len()
	}
	sp.Finish(rows, err)
	return t, err
}

// evalNode evaluates one plan node. Operators with several independent
// inputs (Join, DJoin, Union, Intersect) are scheduled here; everything else
// evaluates its input through the engine and then delegates to the
// operator's own Eval over the materialized input, so combine semantics
// (hash joins, residual predicates, grouping, construction) stay in exactly
// one place: internal/algebra.
func (e *Engine) evalNode(ctx context.Context, op algebra.Op, actx *algebra.Context) (*tab.Tab, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch x := op.(type) {
	case *algebra.Doc, *algebra.Literal, *algebra.SourceQuery:
		// Leaves. A SourceQuery's subplan is evaluated by the source, not
		// here; cancellation reaches it through actx.Ctx.
		return op.Eval(actx)
	case *algebra.Bind:
		if x.From == nil {
			return op.Eval(actx) // document or parameter leaf
		}
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Bind{From: lit(in), Col: x.Col, F: x.F}).Eval(actx)
	case *algebra.Select:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Select{From: lit(in), Pred: x.Pred}).Eval(actx)
	case *algebra.Project:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Project{From: lit(in), Cols: x.Cols}).Eval(actx)
	case *algebra.MapExpr:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.MapExpr{From: lit(in), Col: x.Col, E: x.E}).Eval(actx)
	case *algebra.Distinct:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Distinct{From: lit(in)}).Eval(actx)
	case *algebra.Group:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Group{From: lit(in), Keys: x.Keys, Into: x.Into}).Eval(actx)
	case *algebra.Sort:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Sort{From: lit(in), Cols: x.Cols}).Eval(actx)
	case *algebra.TreeOp:
		in, err := e.eval(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.TreeOp{From: lit(in), C: x.C, OutCol: x.OutCol}).Eval(actx)
	case *algebra.Join:
		l, r, err := e.evalPair(ctx, x.L, x.R, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Join{L: lit(l), R: lit(r), Pred: x.Pred}).Eval(actx)
	case *algebra.Union:
		if e.opts.AllowPartial {
			return e.evalUnionPartial(ctx, x, actx)
		}
		l, r, err := e.evalPair(ctx, x.L, x.R, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Union{L: lit(l), R: lit(r)}).Eval(actx)
	case *algebra.Intersect:
		l, r, err := e.evalPair(ctx, x.L, x.R, actx)
		if err != nil {
			return nil, err
		}
		return (&algebra.Intersect{L: lit(l), R: lit(r)}).Eval(actx)
	case *algebra.DJoin:
		return e.evalDJoin(ctx, x, actx)
	default:
		return nil, fmt.Errorf("exec: unknown operator %T", op)
	}
}

// evalUnionPartial evaluates a Union under graceful degradation: both
// branches always evaluate (a failure on the left must not suppress the
// live rows of the right), and a branch failing with UnavailableError is
// recorded and replaced by its empty shape — the set-oriented counterpart
// of the paper's §2 observation that partial results still compose. Any
// other failure aborts as usual.
func (e *Engine) evalUnionPartial(ctx context.Context, x *algebra.Union, actx *algebra.Context) (*tab.Tab, error) {
	lt, rt, lerr, rerr := e.evalBoth(ctx, x.L, x.R, actx)
	if lerr != nil {
		if !e.degrade(actx, lerr) {
			return nil, lerr
		}
		lt = tab.New(x.L.Columns()...)
	}
	if rerr != nil {
		if !e.degrade(actx, rerr) {
			return nil, rerr
		}
		rt = tab.New(x.R.Columns()...)
	}
	return (&algebra.Union{L: lit(lt), R: lit(rt)}).Eval(actx)
}

// evalBoth evaluates two independent subplans like evalPair, but always
// carries both evaluations to completion and returns both errors — the
// shape graceful degradation needs to keep the live branch's rows when the
// other branch's source is down.
func (e *Engine) evalBoth(ctx context.Context, l, r algebra.Op, actx *algebra.Context) (lt, rt *tab.Tab, lerr, rerr error) {
	if e.opts.Parallelism > 1 && !(mintsSkolems(l) && mintsSkolems(r)) {
		select {
		case e.tokens <- struct{}{}:
			rctx := actx.Fork()
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { <-e.tokens }()
				rt, rerr = e.eval(ctx, r, rctx)
			}()
			lt, lerr = e.eval(ctx, l, actx)
			<-done
			actx.Stats.Add(*rctx.Stats)
			return lt, rt, lerr, rerr
		default:
			// pool saturated: fall through to serial evaluation
		}
	}
	lt, lerr = e.eval(ctx, l, actx)
	rt, rerr = e.eval(ctx, r, actx)
	return lt, rt, lerr, rerr
}

// evalPair evaluates two independent subplans, concurrently when a worker
// is free. The right side forks; the left evaluates inline, so the caller's
// goroutine is never idle. Serialized when both sides mint Skolem
// identifiers (mint order is observable in the result).
func (e *Engine) evalPair(ctx context.Context, l, r algebra.Op, actx *algebra.Context) (*tab.Tab, *tab.Tab, error) {
	if e.opts.Parallelism > 1 && !(mintsSkolems(l) && mintsSkolems(r)) {
		select {
		case e.tokens <- struct{}{}:
			rctx := actx.Fork()
			var rt *tab.Tab
			var rerr error
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { <-e.tokens }()
				rt, rerr = e.eval(ctx, r, rctx)
			}()
			lt, lerr := e.eval(ctx, l, actx)
			<-done
			actx.Stats.Add(*rctx.Stats)
			if lerr != nil {
				return nil, nil, lerr
			}
			if rerr != nil {
				return nil, nil, rerr
			}
			return lt, rt, nil
		default:
			// pool saturated: fall through to serial evaluation
		}
	}
	lt, err := e.eval(ctx, l, actx)
	if err != nil {
		return nil, nil, err
	}
	rt, err := e.eval(ctx, r, actx)
	if err != nil {
		return nil, nil, err
	}
	return lt, rt, nil
}

// evalDJoin is the set-at-a-time dependency join under fan-out: the outer
// rows are deduplicated to distinct binding sets (mirroring the serial
// DJoin.Eval), then either batched pushes — one per chunk of binding sets —
// or per-set inner evaluations are dispatched with at most FanOut units in
// flight. Results re-expand in outer order, so the output and the counters
// equal the serial DJoin's row for row.
func (e *Engine) evalDJoin(ctx context.Context, x *algebra.DJoin, actx *algebra.Context) (*tab.Tab, error) {
	l, err := e.eval(ctx, x.L, actx)
	if err != nil {
		return nil, err
	}
	if actx.PerRowDJoin {
		return e.evalDJoinPerRow(ctx, x, actx, l)
	}
	set := algebra.NewDJoinSet(actx, x, l)
	if set.Batchable() {
		chunks, cerr := set.PendingChunks(actx)
		if cerr != nil {
			return nil, cerr
		}
		err = e.fanOut(ctx, actx, len(chunks), false, func(u *algebra.Context, i int) error {
			return set.EvalChunk(u, chunks[i])
		})
	} else {
		// Serialized when the inner plan mints Skolem identifiers: mint
		// order across binding sets is observable in the output.
		err = e.fanOut(ctx, actx, len(set.Bindings.Sets), mintsSkolems(x.R), func(u *algebra.Context, i int) error {
			return set.EvalSet(u, i, x.R, func(c *algebra.Context, op algebra.Op) (*tab.Tab, error) {
				return e.eval(ctx, op, c)
			})
		})
	}
	if err != nil {
		return nil, err
	}
	return set.Expand(l, x.Columns()), nil
}

// evalDJoinPerRow is the pre-batching baseline under fan-out: one inner
// evaluation per outer row with the full row bound as parameters.
func (e *Engine) evalDJoinPerRow(ctx context.Context, x *algebra.DJoin, actx *algebra.Context, l *tab.Tab) (*tab.Tab, error) {
	subs := make([]*tab.Tab, len(l.Rows))
	err := e.fanOut(ctx, actx, len(l.Rows), mintsSkolems(x.R), func(u *algebra.Context, i int) error {
		params := make(map[string]tab.Cell, len(l.Cols))
		for j, c := range l.Cols {
			params[c] = l.Rows[i][j]
		}
		sub, err := e.eval(ctx, x.R, u.WithParams(params))
		subs[i] = sub
		return err
	})
	if err != nil {
		return nil, err
	}
	out := tab.New(x.Columns()...)
	for i, sub := range subs {
		for _, rr := range sub.Rows {
			out.AddRow(append(l.Rows[i].Clone(), rr...))
		}
	}
	return out, nil
}

// fanOut runs n independent units with at most FanOut in flight (forked
// units come from the shared worker pool; the dispatching goroutine runs
// the overflow inline, so it is never idle and never deadlocks). Each unit
// receives the context to evaluate under — a Stats fork when running
// concurrently — and its index. Units must only write disjoint state.
// Serial execution (Parallelism 1, a single unit, or serialOnly) calls the
// units in order on actx itself.
func (e *Engine) fanOut(ctx context.Context, actx *algebra.Context, n int, serialOnly bool, unit func(*algebra.Context, int) error) error {
	run := func(u *algebra.Context, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return unit(u, i)
	}
	if e.opts.Parallelism <= 1 || n <= 1 || serialOnly {
		for i := 0; i < n; i++ {
			if err := run(actx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var forked algebra.Stats
	// local caps this operator's own fan-out below the global pool: at
	// most FanOut-1 forked units in flight (the inline unit is the
	// FanOut-th).
	local := make(chan struct{}, e.opts.FanOut-1)
	for i := 0; i < n; i++ {
		i := i
		forkable := false
		select {
		case local <- struct{}{}:
			forkable = true
		default:
		}
		if forkable {
			select {
			case e.tokens <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-e.tokens; <-local }()
					rctx := actx.Fork()
					if actx.Trace != nil {
						// Parent the forked unit's work to a worker span
						// under the fanned-out operator, so a profile shows
						// which units actually ran concurrently.
						ws := actx.Trace.NewChild("worker", fmt.Sprintf("unit %d", i))
						rctx.Trace = ws
						if rctx.Ctx != nil {
							rctx.Ctx = obs.WithSpan(rctx.Ctx, ws)
						}
						defer func() { ws.Finish(-1, errs[i]) }()
					}
					errs[i] = run(rctx, i)
					mu.Lock()
					forked.Add(*rctx.Stats)
					mu.Unlock()
				}()
				continue
			default:
				<-local // global pool saturated: give the slot back
			}
		}
		// No free worker: run this unit inline. This both bounds the
		// fan-out and keeps the dispatching goroutine productive.
		errs[i] = run(actx, i)
	}
	wg.Wait()
	actx.Stats.Add(forked)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mintsSkolems reports whether evaluating the plan can mint Skolem
// identifiers (only the Tree operator does). Minting draws numbers from the
// context's shared registry in evaluation order, and those numbers appear
// in the constructed trees — so two units that both mint must not run
// concurrently if the engine is to reproduce serial output exactly. The
// check descends into SourceQuery subplans too; that is conservative
// (pushed plans evaluate at the source), never wrong.
func mintsSkolems(op algebra.Op) bool {
	found := false
	algebra.Walk(op, func(o algebra.Op) bool {
		if _, ok := o.(*algebra.TreeOp); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
