// Streaming (chunked-batch pull) evaluation. Engine.Stream is the
// counterpart of Engine.Run that returns a tab.Cursor instead of a
// materialized table: operators pull chunks of ~tab.DefaultStreamChunk rows
// from their inputs, transform them and hand them on, so peak memory is
// bounded by chunk size × pipeline depth rather than by result size, and
// the first rows surface before the sources have finished answering.
//
// Row fidelity: on a serial engine (Parallelism 1) the streamed rows are
// identical, in order, to Engine.Run — pipeline operators (Bind, Select,
// Project, Map, Tree, Distinct, the probe side of hash Join, DJoin outer
// chunks re-expanded in outer order) preserve order chunk by chunk, and
// inherently blocking operators (Group, Sort, Intersect, per-row DJoin)
// fall back to materialized evaluation behind a chunking cursor. Under
// parallelism the one divergence is Union, which interleaves child chunks
// as they arrive (bag-equal, lower time-to-first-row); everything else
// stays order-identical.
//
// Push accounting can differ from the materialized engine: a streaming
// DJoin deduplicates binding sets per outer chunk, not globally, so
// duplicates spanning chunk boundaries cost extra pushes unless the shared
// result cache absorbs them. Rows are unaffected.
package exec

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/algebra"
	"repro/internal/obs"
	"repro/internal/tab"
)

// Stream evaluates a plan as a chunk stream. The cursor must be drained or
// closed: Close cancels the query context, which aborts in-flight source
// I/O (client-abandon propagates to wrappers). Under AllowPartial a
// mid-stream source failure ends the stream instead of erroring — the rows
// already delivered stand, and the failure is recorded in actx.Partial.
func (e *Engine) Stream(ctx context.Context, plan algebra.Op, actx *algebra.Context) (tab.Cursor, error) {
	var cancel context.CancelFunc
	if e.opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	ectx := actx.WithContext(ctx)
	if e.opts.BatchChunk > 0 {
		ectx.BatchChunk = e.opts.BatchChunk
	}
	if e.opts.PerRowDJoin {
		ectx.PerRowDJoin = true
	}
	if e.opts.AllowPartial && ectx.Partial == nil {
		ectx.Partial = algebra.NewPartialReport()
	}
	cur, err := e.stream(ctx, plan, ectx)
	if err != nil {
		cancel()
		if e.degrade(ectx, err) {
			return tab.NewSliceCursor(tab.New(plan.Columns()...), 0), nil
		}
		return nil, err
	}
	return &rootCursor{e: e, ectx: ectx, cur: cur, cancel: cancel}, nil
}

// rootCursor is the top of a streamed evaluation: it owns the query
// context (cancelled at end-of-stream, on error, and on Close) and applies
// root-level graceful degradation, mirroring Run.
type rootCursor struct {
	e      *Engine
	ectx   *algebra.Context
	cur    tab.Cursor
	cancel context.CancelFunc
	done   bool
}

func (c *rootCursor) Cols() []string { return c.cur.Cols() }

func (c *rootCursor) Next() (*tab.Tab, error) {
	if c.done {
		return nil, io.EOF
	}
	t, err := c.cur.Next()
	if err == nil {
		return t, nil
	}
	c.done = true
	c.cur.Close()
	c.cancel()
	if err != io.EOF && c.e.degrade(c.ectx, err) {
		// The rows already streamed stand; the failed source is on record.
		err = io.EOF
	}
	return nil, err
}

func (c *rootCursor) Close() error {
	if c.done {
		return nil
	}
	c.done = true
	err := c.cur.Close()
	c.cancel()
	return err
}

// stream opens a cursor over one plan node, wrapping it in a span when
// tracing (the streaming analogue of eval): the span finishes when the
// cursor ends, carries the produced row count, and records the instant the
// first chunk left the operator — the per-operator time-to-first-row shown
// by EXPLAIN ANALYZE.
func (e *Engine) stream(ctx context.Context, op algebra.Op, actx *algebra.Context) (tab.Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if actx.Trace == nil {
		return e.streamNode(ctx, op, actx)
	}
	if _, ok := op.(*algebra.Literal); ok {
		return e.streamNode(ctx, op, actx)
	}
	sp := actx.Trace.NewChild(algebra.OpKind(op), op.Detail())
	cc := *actx
	cc.Trace = sp
	tctx := obs.WithSpan(ctx, sp)
	cc.Ctx = tctx
	cur, err := e.streamNode(tctx, op, &cc)
	if err != nil {
		sp.Finish(-1, err)
		return nil, err
	}
	return &spanCursor{cur: cur, sp: sp}, nil
}

// spanCursor ties a span's lifetime to a cursor's: rows are counted as they
// pass, the first non-empty chunk stamps the first-row time, and the span
// finishes when the stream ends (or is abandoned).
type spanCursor struct {
	cur  tab.Cursor
	sp   *obs.Span
	rows int
	fin  bool
}

func (c *spanCursor) Cols() []string { return c.cur.Cols() }

func (c *spanCursor) finish(err error) {
	if c.fin {
		return
	}
	c.fin = true
	c.sp.Finish(c.rows, err)
}

func (c *spanCursor) Next() (*tab.Tab, error) {
	t, err := c.cur.Next()
	if err != nil {
		if err == io.EOF {
			c.finish(nil)
		} else {
			c.finish(err)
		}
		return nil, err
	}
	if t.Len() > 0 {
		c.sp.MarkFirstRow()
		c.rows += t.Len()
	}
	return t, nil
}

func (c *spanCursor) Close() error {
	err := c.cur.Close()
	c.finish(nil)
	return err
}

// materialize evaluates op with the materialized engine and serves the
// result as chunks — the fallback for operators that are inherently
// blocking (they need their whole input before emitting anything) and for
// sources without a streaming protocol. The caller's stream() has already
// opened this op's span, so the node evaluator is entered directly.
func (e *Engine) materialize(ctx context.Context, op algebra.Op, actx *algebra.Context) (tab.Cursor, error) {
	t, err := e.evalNode(ctx, op, actx)
	if err != nil {
		return nil, err
	}
	return tab.NewSliceCursor(t, 0), nil
}

// mapCursor streams in through a per-chunk transform (the 1:1 pipeline
// shape of Bind/Select/Project/Map/Tree).
func mapCursor(in tab.Cursor, cols []string, f func(*tab.Tab) (*tab.Tab, error)) tab.Cursor {
	return &tab.FuncCursor{
		Columns: cols,
		NextFn: func() (*tab.Tab, error) {
			t, err := in.Next()
			if err != nil {
				return nil, err
			}
			out, err := f(t)
			if err != nil {
				in.Close()
				return nil, err
			}
			return out, nil
		},
		CloseFn: in.Close,
	}
}

// streamNode opens a cursor for one plan node. The switch is exhaustive
// over the algebra (yat-lint enforces it): every operator either pipelines
// — transforming input chunks as they arrive — or deliberately falls back
// to materialized evaluation, so the streaming path accepts exactly the
// plans Run does.
func (e *Engine) streamNode(ctx context.Context, op algebra.Op, actx *algebra.Context) (tab.Cursor, error) {
	switch x := op.(type) {
	case *algebra.Literal:
		return tab.NewSliceCursor(x.T, 0), nil
	case *algebra.Doc:
		// Whole-document leaf: the forest is needed as one value.
		return e.materialize(ctx, op, actx)
	case *algebra.SourceQuery:
		cur, ok, err := x.Stream(actx)
		if err != nil {
			return nil, err
		}
		if ok {
			return cur, nil
		}
		return e.materialize(ctx, op, actx)
	case *algebra.Bind:
		if x.Doc != "" {
			cur, ok, err := x.StreamDoc(actx)
			if err != nil {
				return nil, err
			}
			if ok {
				return cur, nil
			}
			return e.materialize(ctx, op, actx)
		}
		if x.From == nil {
			return e.materialize(ctx, op, actx) // parameter leaf
		}
		in, err := e.stream(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			return (&algebra.Bind{From: lit(t), Col: x.Col, F: x.F}).Eval(actx)
		}), nil
	case *algebra.Select:
		in, err := e.stream(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			return (&algebra.Select{From: lit(t), Pred: x.Pred}).Eval(actx)
		}), nil
	case *algebra.Project:
		in, err := e.stream(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			return (&algebra.Project{From: lit(t), Cols: x.Cols}).Eval(actx)
		}), nil
	case *algebra.MapExpr:
		in, err := e.stream(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			return (&algebra.MapExpr{From: lit(t), Col: x.Col, E: x.E}).Eval(actx)
		}), nil
	case *algebra.TreeOp:
		// Tree construction pipelines: Skolem minting follows chunk
		// consumption order, which on the serial path equals row order.
		in, err := e.stream(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			return (&algebra.TreeOp{From: lit(t), C: x.C, OutCol: x.OutCol}).Eval(actx)
		}), nil
	case *algebra.Distinct:
		in, err := e.stream(ctx, x.From, actx)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			out := tab.New(t.Cols...)
			for _, r := range t.Rows {
				k := r.Key()
				if !seen[k] {
					seen[k] = true
					out.Rows = append(out.Rows, r)
				}
			}
			return out, nil
		}), nil
	case *algebra.Group, *algebra.Sort, *algebra.Intersect:
		// Blocking operators: nothing can be emitted before the whole
		// input is seen, so streaming them buys no memory bound.
		return e.materialize(ctx, op, actx)
	case *algebra.Join:
		// Hash join: materialize the build side (R) once, stream the probe
		// side — probe order is input order, so chunk-by-chunk probing
		// reproduces the materialized row order exactly.
		rt, err := e.eval(ctx, x.R, actx)
		if err != nil {
			return nil, err
		}
		in, err := e.stream(ctx, x.L, actx)
		if err != nil {
			return nil, err
		}
		return mapCursor(in, x.Columns(), func(t *tab.Tab) (*tab.Tab, error) {
			return (&algebra.Join{L: lit(t), R: lit(rt), Pred: x.Pred}).Eval(actx)
		}), nil
	case *algebra.Union:
		return e.streamUnion(ctx, x, actx)
	case *algebra.DJoin:
		return e.streamDJoin(ctx, x, actx)
	default:
		return nil, fmt.Errorf("exec: unknown operator %T", op)
	}
}

// streamDJoin consumes outer chunks and resolves each with batched pushes
// (or per-set inner evaluations) as it arrives, instead of waiting for the
// whole outer table. The outer is re-bitten to one push batch per chunk
// (times the worker count under parallelism, so fan-out still has work), so
// time-to-first-row is one outer bite plus a single push round trip rather
// than however many batches a larger chunk would need. Deduplication is per
// outer bite; the shared result cache (when installed) restores cross-bite
// deduplication. Results re-expand in outer order per bite, so output rows
// equal the materialized DJoin's.
func (e *Engine) streamDJoin(ctx context.Context, x *algebra.DJoin, actx *algebra.Context) (tab.Cursor, error) {
	if actx.PerRowDJoin {
		// The per-row baseline exists to measure what batching saves;
		// keeping it materialized keeps the comparison meaningful.
		return e.materialize(ctx, x, actx)
	}
	outer, err := e.stream(ctx, x.L, actx)
	if err != nil {
		return nil, err
	}
	bite := actx.BatchChunk
	if bite <= 0 {
		bite = algebra.DefaultBatchChunk
	}
	if p := e.opts.Parallelism; p > 1 {
		bite *= p
	}
	outer = tab.Rechunk(outer, bite)
	cols := x.Columns()
	return &tab.FuncCursor{
		Columns: cols,
		NextFn: func() (*tab.Tab, error) {
			l, err := outer.Next()
			if err != nil {
				return nil, err
			}
			if l.Len() == 0 {
				return tab.New(cols...), nil
			}
			set := algebra.NewDJoinSet(actx, x, l)
			if set.Batchable() {
				chunks, err := set.PendingChunks(actx)
				if err != nil {
					outer.Close()
					return nil, err
				}
				err = e.fanOut(ctx, actx, len(chunks), false, func(u *algebra.Context, i int) error {
					return set.EvalChunk(u, chunks[i])
				})
				if err != nil {
					outer.Close()
					return nil, err
				}
			} else {
				err := e.fanOut(ctx, actx, len(set.Bindings.Sets), mintsSkolems(x.R), func(u *algebra.Context, i int) error {
					return set.EvalSet(u, i, x.R, func(c *algebra.Context, op algebra.Op) (*tab.Tab, error) {
						return e.eval(ctx, op, c)
					})
				})
				if err != nil {
					outer.Close()
					return nil, err
				}
			}
			return set.Expand(l, cols), nil
		},
		CloseFn: outer.Close,
	}, nil
}

// streamUnion streams a Union. Serially (and when both branches mint Skolem
// identifiers, whose order is observable) the branches play in plan order —
// left exhausted, then right, opened lazily — which preserves the
// materialized row order. Under parallelism the branches produce into a
// bounded channel concurrently and chunks interleave in arrival order:
// bag-identical rows, first row from whichever source answers first.
// Graceful degradation matches evalUnionPartial: an unavailable branch is
// recorded and contributes what it managed to stream; the other branch
// still plays out.
func (e *Engine) streamUnion(ctx context.Context, x *algebra.Union, actx *algebra.Context) (tab.Cursor, error) {
	if e.opts.Parallelism <= 1 || (mintsSkolems(x.L) && mintsSkolems(x.R)) {
		return &seqUnionCursor{e: e, ctx: ctx, actx: actx, cols: x.Columns(), branches: []algebra.Op{x.L, x.R}}, nil
	}
	return e.streamUnionInterleaved(ctx, x, actx)
}

// seqUnionCursor plays its branches in order, opening each lazily.
type seqUnionCursor struct {
	e        *Engine
	ctx      context.Context
	actx     *algebra.Context
	cols     []string
	branches []algebra.Op
	cur      tab.Cursor
	i        int
}

func (c *seqUnionCursor) Cols() []string { return c.cols }

func (c *seqUnionCursor) Next() (*tab.Tab, error) {
	for {
		if c.cur == nil {
			if c.i >= len(c.branches) {
				return nil, io.EOF
			}
			cur, err := c.e.stream(c.ctx, c.branches[c.i], c.actx)
			c.i++
			if err != nil {
				if c.e.degrade(c.actx, err) {
					continue
				}
				return nil, err
			}
			c.cur = cur
		}
		t, err := c.cur.Next()
		if err == io.EOF {
			c.cur.Close()
			c.cur = nil
			continue
		}
		if err != nil {
			c.cur.Close()
			c.cur = nil
			if c.e.degrade(c.actx, err) {
				continue
			}
			return nil, err
		}
		return t, nil
	}
}

func (c *seqUnionCursor) Close() error {
	c.i = len(c.branches)
	if c.cur != nil {
		err := c.cur.Close()
		c.cur = nil
		return err
	}
	return nil
}

// streamUnionInterleaved runs both branches concurrently, each under a
// Stats fork (merged exactly once when the stream ends), and yields chunks
// in arrival order through a bounded channel — the backpressure bound: a
// branch stalls once the consumer falls two chunks behind.
func (e *Engine) streamUnionInterleaved(ctx context.Context, x *algebra.Union, actx *algebra.Context) (tab.Cursor, error) {
	type item struct {
		t   *tab.Tab
		err error
	}
	cctx, cancel := context.WithCancel(ctx)
	ch := make(chan item, 2)
	var wg sync.WaitGroup
	forks := make([]*algebra.Context, 2)
	for i, br := range []algebra.Op{x.L, x.R} {
		fctx := actx.Fork() // Partial and Cache are shared; Stats is forked
		forks[i] = fctx
		wg.Add(1)
		go func(br algebra.Op, fctx *algebra.Context) {
			defer wg.Done()
			cur, err := e.stream(cctx, br, fctx)
			if err != nil {
				if !e.degrade(fctx, err) {
					select {
					case ch <- item{err: err}:
					case <-cctx.Done():
					}
				}
				return
			}
			defer cur.Close()
			for {
				t, err := cur.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					if !e.degrade(fctx, err) {
						select {
						case ch <- item{err: err}:
						case <-cctx.Done():
						}
					}
					return
				}
				select {
				case ch <- item{t: t}:
				case <-cctx.Done():
					return
				}
			}
		}(br, fctx)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var mergeOnce sync.Once
	merge := func() {
		mergeOnce.Do(func() {
			for _, f := range forks {
				actx.Stats.Add(*f.Stats)
			}
		})
	}
	finished := false
	return &tab.FuncCursor{
		Columns: x.Columns(),
		NextFn: func() (*tab.Tab, error) {
			if finished {
				return nil, io.EOF
			}
			for {
				select {
				case it := <-ch:
					if it.err != nil {
						finished = true
						cancel()
						<-done
						merge()
						return nil, it.err
					}
					return it.t, nil
				case <-done:
					// Producers are gone; drain what they buffered.
					select {
					case it := <-ch:
						if it.err != nil {
							finished = true
							cancel()
							merge()
							return nil, it.err
						}
						return it.t, nil
					default:
						finished = true
						cancel()
						merge()
						return nil, io.EOF
					}
				}
			}
		},
		CloseFn: func() error {
			finished = true
			cancel()
			<-done
			merge()
			return nil
		},
	}, nil
}
