package exec_test

// The engine's contract is equality with serial evaluation: same rows, same
// order, same statistics — only faster against network sources. The tests
// run parallel plans against live wire wrappers (real TCP, real XML frames)
// and compare row for row with the recursive Eval; the cancellation test
// parks a wrapper forever and demands a prompt deadline error. All of this
// is meant to run under -race: the engine, the wire client pool and the
// wrappers share every code path the mediator uses.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/filter"
	"repro/internal/o2wrap"
	"repro/internal/tab"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// serveWrappers brings up the two Figure 2 wrappers on ephemeral ports and
// returns an evaluation context whose sources are wire clients.
func serveWrappers(t *testing.T, w *datagen.Workload) *algebra.Context {
	t.Helper()
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	exps := []wire.Exported{
		{Source: ow, Interface: ow.ExportInterface(), Structures: map[string]wire.StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		}},
		{Source: ww, Interface: ww.ExportInterface(), Structures: map[string]wire.StructureRef{
			"works": {Model: ww.ExportStructure(), Pattern: "Works"},
		}},
	}
	ctx := algebra.NewContext()
	ctx.Funcs["contains"] = waiswrap.Contains
	for _, exp := range exps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.Serve(ln, exp)
		t.Cleanup(srv.Close)
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		ctx.Sources[c.Name()] = c
	}
	return ctx
}

// titleRows builds a one-column table of the first k work titles — the
// outer side of the information-passing DJoin of E11.
func titleRows(w *datagen.Workload, k int) *tab.Tab {
	t := tab.New("$t")
	for i := 0; i < k && i < len(w.Works); i++ {
		t.Add(tab.AtomCell(data.String(w.Works[i].Child("title").Atom.S)))
	}
	return t
}

func o2TitlePrice() algebra.Op {
	return &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
		`set[ *class[ artifact.tuple[ title: $t2, price: $p ] ] ]`)}
}

// runBoth evaluates the plan serially (the algebra's own Eval) and on a
// parallel engine, asserting identical rows in identical order and
// identical source-push accounting.
func runBoth(t *testing.T, plan algebra.Op, mk func() *algebra.Context, opts exec.Options) {
	t.Helper()
	sctx := mk()
	serial, err := plan.Eval(sctx)
	if err != nil {
		t.Fatal(err)
	}
	pctx := mk()
	par, err := exec.New(opts).Run(context.Background(), plan, pctx)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(par) {
		t.Fatalf("parallel result diverges from serial:\nserial (%d rows):\n%s\nparallel (%d rows):\n%s",
			serial.Len(), serial, par.Len(), par)
	}
	if serial.Len() == 0 {
		t.Fatal("empty fixture: the comparison is vacuous")
	}
	if sctx.Stats.SourcePushes != pctx.Stats.SourcePushes {
		t.Errorf("pushes: serial %d parallel %d", sctx.Stats.SourcePushes, pctx.Stats.SourcePushes)
	}
	if sctx.Stats.SourceFetches != pctx.Stats.SourceFetches {
		t.Errorf("fetches: serial %d parallel %d", sctx.Stats.SourceFetches, pctx.Stats.SourceFetches)
	}
}

func TestParallelDJoinFanOutWire(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	ctx := serveWrappers(t, w)
	mk := func() *algebra.Context { c := *ctx; c.Stats = &algebra.Stats{}; return &c }
	plan := &algebra.DJoin{
		L: &algebra.Literal{T: titleRows(w, 40)},
		R: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$t2 = $t`)}},
	}
	runBoth(t, plan, mk, exec.Options{Parallelism: 8})
	// a tighter fan-out bound must not change the answer either
	runBoth(t, plan, mk, exec.Options{Parallelism: 8, FanOut: 2})
}

func TestParallelJoinAndUnionWire(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	ctx := serveWrappers(t, w)
	mk := func() *algebra.Context { c := *ctx; c.Stats = &algebra.Stats{}; return &c }
	join := &algebra.Join{
		L:    &algebra.Literal{T: titleRows(w, 30)},
		R:    &algebra.SourceQuery{Source: "o2artifact", Plan: o2TitlePrice()},
		Pred: algebra.MustParseExpr(`$t = $t2`),
	}
	runBoth(t, join, mk, exec.Options{Parallelism: 4})
	union := &algebra.Union{
		L: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$p < 100000`)}},
		R: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$p >= 100000`)}},
	}
	runBoth(t, union, mk, exec.Options{Parallelism: 4})
}

// stuckSource is a wrapper whose push never answers — a dead source that
// must not be able to hang a query once a deadline is set.
type stuckSource struct {
	release chan struct{}
}

func (s *stuckSource) Name() string        { return "stuck" }
func (s *stuckSource) Documents() []string { return []string{"pit"} }
func (s *stuckSource) Fetch(doc string) (data.Forest, error) {
	<-s.release
	return data.Forest{data.Elem("pit")}, nil
}
func (s *stuckSource) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	<-s.release
	return tab.New(plan.Columns()...), nil
}

func TestTimeoutCancelsStuckWrapper(t *testing.T) {
	stuck := &stuckSource{release: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(ln, wire.Exported{Source: stuck})
	t.Cleanup(srv.Close)
	// LIFO: unblock the parked handlers before Close waits for them
	t.Cleanup(func() { close(stuck.release) })
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx := algebra.NewContext()
	ctx.Sources["stuck"] = c
	plan := &algebra.SourceQuery{Source: "stuck",
		Plan: &algebra.Bind{Doc: "pit", F: filter.MustParse(`pit@$x`)}}
	start := time.Now()
	_, err = exec.New(exec.Options{Parallelism: 4, Timeout: 200 * time.Millisecond}).
		Run(context.Background(), plan, ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v: the stuck wrapper hung the query", elapsed)
	}
}

func TestCancelPropagatesToFanOut(t *testing.T) {
	// Cancel mid-fan-out: a DJoin over a stuck inner source must return the
	// cancellation error, not deadlock waiting for its workers.
	stuck := &stuckSource{release: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(ln, wire.Exported{Source: stuck})
	t.Cleanup(srv.Close)
	// LIFO: unblock the parked handlers before Close waits for them
	t.Cleanup(func() { close(stuck.release) })
	c, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	actx := algebra.NewContext()
	actx.Sources["stuck"] = c
	left := tab.New("$t")
	for i := 0; i < 8; i++ {
		left.Add(tab.AtomCell(data.String("x")))
	}
	plan := &algebra.DJoin{
		L: &algebra.Literal{T: left},
		R: &algebra.SourceQuery{Source: "stuck",
			Plan: &algebra.Bind{Doc: "pit", F: filter.MustParse(`pit@$x`)}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(100 * time.Millisecond); cancel() }()
	_, err = exec.New(exec.Options{Parallelism: 4}).Run(ctx, plan, actx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSerialEngineIsPlainEval(t *testing.T) {
	// Parallelism 1 must follow the exact serial path, skolem minting and
	// all: a Tree-constructing plan is the strictest order witness.
	w := datagen.Generate(datagen.DefaultParams(60))
	mk := func() *algebra.Context {
		ctx := algebra.NewContext()
		ctx.Sources["o2artifact"] = o2wrap.New("o2artifact", w.DB)
		ctx.Sources["xmlartwork"] = waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
		ctx.Funcs["contains"] = waiswrap.Contains
		return ctx
	}
	plan := &algebra.TreeOp{
		From: &algebra.DJoin{
			L: &algebra.Literal{T: titleRows(w, 10)},
			R: &algebra.SourceQuery{Source: "o2artifact",
				Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$t2 = $t`)}},
		},
		C: algebra.MustParseCons(`hit[ title: $t, price: $p ]`),
	}
	runBoth(t, plan, mk, exec.Options{Parallelism: 1})
	// and the skolem gate must keep parallel engines equal too
	runBoth(t, plan, mk, exec.Options{Parallelism: 8})
}
