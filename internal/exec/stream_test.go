package exec_test

// The streaming engine's contract mirrors the parallel engine's: same rows
// as serial evaluation, order-identical when streaming serially, bag-equal
// when parallel Union interleaves child chunks. These tests drain the
// cursor over live wire wrappers so the chunked framing, the conn pinning
// and the pull-driven wrapper calls all run under -race.

import (
	"context"
	"testing"

	"repro/internal/algebra"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/tab"
)

// streamBoth evaluates the plan serially (materialized Eval) and by
// draining the streaming engine, asserting row fidelity. ordered demands
// byte-identical row order (the serial-stream guarantee); interleaving
// paths assert bag equality.
func streamBoth(t *testing.T, plan algebra.Op, mk func() *algebra.Context, opts exec.Options, ordered bool) {
	t.Helper()
	sctx := mk()
	serial, err := plan.Eval(sctx)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("empty fixture: the comparison is vacuous")
	}
	cur, err := exec.New(opts).Stream(context.Background(), plan, mk())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if ordered {
		if !serial.Equal(got) {
			t.Fatalf("streamed rows diverge from serial:\nserial (%d rows):\n%s\nstreamed (%d rows):\n%s",
				serial.Len(), serial, got.Len(), got)
		}
	} else if !serial.EqualUnordered(got) {
		t.Fatalf("streamed rows are not the serial bag:\nserial (%d rows):\n%s\nstreamed (%d rows):\n%s",
			serial.Len(), serial, got.Len(), got)
	}
}

func TestStreamDJoinWire(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	ctx := serveWrappers(t, w)
	mk := func() *algebra.Context { c := *ctx; c.Stats = &algebra.Stats{}; return &c }
	plan := &algebra.DJoin{
		L: &algebra.Literal{T: titleRows(w, 40)},
		R: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$t2 = $t`)}},
	}
	streamBoth(t, plan, mk, exec.Options{Parallelism: 1}, true)
	streamBoth(t, plan, mk, exec.Options{Parallelism: 8, FanOut: 2}, true)
}

func TestStreamJoinAndUnionWire(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(120))
	ctx := serveWrappers(t, w)
	mk := func() *algebra.Context { c := *ctx; c.Stats = &algebra.Stats{}; return &c }
	join := &algebra.Join{
		L:    &algebra.Literal{T: titleRows(w, 30)},
		R:    &algebra.SourceQuery{Source: "o2artifact", Plan: o2TitlePrice()},
		Pred: algebra.MustParseExpr(`$t = $t2`),
	}
	streamBoth(t, join, mk, exec.Options{Parallelism: 1}, true)
	streamBoth(t, join, mk, exec.Options{Parallelism: 4}, true)
	union := &algebra.Union{
		L: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$p < 100000`)}},
		R: &algebra.SourceQuery{Source: "o2artifact",
			Plan: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$p >= 100000`)}},
	}
	// Serial streaming keeps union order (left branch then right); the
	// parallel engine interleaves child chunks, so only the bag is fixed.
	streamBoth(t, union, mk, exec.Options{Parallelism: 1}, true)
	streamBoth(t, union, mk, exec.Options{Parallelism: 4}, false)
}

func TestStreamOperatorsOverWire(t *testing.T) {
	// The 1:1 streaming operators (Select, Project, Distinct over a fetched
	// document) keep serial row order chunk by chunk.
	w := datagen.Generate(datagen.DefaultParams(150))
	ctx := serveWrappers(t, w)
	mk := func() *algebra.Context { c := *ctx; c.Stats = &algebra.Stats{}; return &c }
	plan := &algebra.Distinct{
		From: &algebra.Project{
			Cols: []string{"$t2"},
			From: &algebra.Select{From: o2TitlePrice(), Pred: algebra.MustParseExpr(`$p >= 0`)},
		},
	}
	streamBoth(t, plan, mk, exec.Options{Parallelism: 1}, true)
	streamBoth(t, plan, mk, exec.Options{Parallelism: 4}, true)
}

func TestStreamFirstChunkBeforeEOF(t *testing.T) {
	// Pipelining, not batch-then-chunk: the first chunk of a multi-chunk
	// result must be available from the cursor before the stream ends.
	w := datagen.Generate(datagen.DefaultParams(400))
	ctx := serveWrappers(t, w)
	c := *ctx
	c.Stats = &algebra.Stats{}
	cur, err := exec.New(exec.Options{Parallelism: 1}).Stream(context.Background(), o2TitlePrice(), &c)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	first, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 || first.Len() > tab.DefaultStreamChunk {
		t.Fatalf("first chunk has %d rows, want 1..%d", first.Len(), tab.DefaultStreamChunk)
	}
	rest, err := tab.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Len() == 0 {
		t.Fatalf("whole result fit one chunk (%d rows); fixture too small", first.Len())
	}
}

func TestStreamCloseEarlyReleasesPipeline(t *testing.T) {
	// Abandoning a cursor mid-stream must not wedge anything: a later query
	// on the same wire clients still works (the pinned stream conn was
	// discarded or released, not leaked in a bad state).
	w := datagen.Generate(datagen.DefaultParams(400))
	ctx := serveWrappers(t, w)
	c := *ctx
	c.Stats = &algebra.Stats{}
	cur, err := exec.New(exec.Options{Parallelism: 1}).Stream(context.Background(), o2TitlePrice(), &c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := *ctx
	c2.Stats = &algebra.Stats{}
	res, err := exec.New(exec.Options{Parallelism: 1}).Run(context.Background(), o2TitlePrice(), &c2)
	if err != nil {
		t.Fatalf("query after abandoned stream: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("query after abandoned stream returned no rows")
	}
}
