package obs

import (
	"sync"
	"time"
)

// maxObserverSpans bounds the observer's span ring so a long-lived wrapper
// server cannot grow memory without bound.
const maxObserverSpans = 256

// Observer is the server-side observability hook handed to a wire.Server:
// it records one span per handled request (fetch/push/pushbatch/...),
// carrying the caller's trace id when the frame was tagged, and feeds
// per-request counters and latency histograms into its Registry.
type Observer struct {
	Reg *Registry

	mu    sync.Mutex
	spans []*Span // ring of recent request spans, newest last
}

// NewObserver returns an observer feeding the given registry (which may be
// shared with the rest of the process).
func NewObserver(reg *Registry) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{Reg: reg}
}

// StartRequest opens a span for one wire request. kind is the frame label
// ("fetch", "push", "pushbatch", ...); traceID is the caller's trace id
// from the frame tag ("" when the caller was not tracing).
func (o *Observer) StartRequest(kind, traceID string) *Span {
	s := &Span{ID: traceID, Name: kind, Start: time.Now(), Rows: -1}
	o.mu.Lock()
	o.spans = append(o.spans, s)
	if len(o.spans) > maxObserverSpans {
		o.spans = o.spans[len(o.spans)-maxObserverSpans:]
	}
	o.mu.Unlock()
	return s
}

// EndRequest closes the span and feeds the registry.
func (o *Observer) EndRequest(s *Span, rows int, err error) {
	s.Finish(rows, err)
	o.Reg.Counter("wire_requests_total").Add(1)
	o.Reg.Counter("wire_requests_" + s.Name).Add(1)
	if err != nil {
		o.Reg.Counter("wire_request_errors_total").Add(1)
	}
	if rows > 0 {
		o.Reg.Counter("wire_rows_returned_total").Add(int64(rows))
	}
	o.Reg.Histogram("wire_request_ms").Observe(float64(s.Duration()) / float64(time.Millisecond))
}

// Spans returns a copy of the recent request spans, oldest first.
func (o *Observer) Spans() []*Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Span(nil), o.spans...)
}
