package obs

import (
	"sync"
	"testing"
)

func TestLabelName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"acme", "fd_queries{tenant=acme}"},
		{"", "fd_queries{tenant=unknown}"},
		{"a=b{c}", "fd_queries{tenant=a_b_c_}"},
		{"x,y\"z\n", "fd_queries{tenant=x_y_z_}"},
	}
	for _, c := range cases {
		if got := LabelName("fd_queries", "tenant", c.in); got != c.want {
			t.Errorf("LabelName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTenantInstrumentsStableAndConcurrent(t *testing.T) {
	r := NewRegistry()
	if r.TenantCounter("q", "a") != r.TenantCounter("q", "a") {
		t.Fatal("same (metric, tenant) must return the same counter")
	}
	if r.TenantCounter("q", "a") == r.TenantCounter("q", "b") {
		t.Fatal("different tenants must get distinct counters")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := string(rune('a' + i%2))
			for j := 0; j < 100; j++ {
				r.TenantCounter("q", tenant).Add(1)
				r.TenantHistogram("lat", tenant).Observe(float64(j))
				r.TenantGauge("run", tenant).Set(int64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.TenantCounter("q", "a").Value() + r.TenantCounter("q", "b").Value(); got != 800 {
		t.Fatalf("tenant counter total = %d, want 800", got)
	}
	snap := r.Snapshot()
	counters := snap["counters"].(map[string]int64)
	if _, ok := counters["q{tenant=a}"]; !ok {
		t.Fatalf("snapshot missing labeled counter: %v", counters)
	}
}
