package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the HTTP plane: the registry's JSON snapshot on /metrics
// and the stdlib pprof handlers on /debug/pprof/ (mounted explicitly — the
// plane uses its own mux, not http.DefaultServeMux, so importing this
// package never pollutes the default mux of an embedding program).
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Plane is a running metrics/pprof HTTP server.
type Plane struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
	ln   net.Listener
}

// Serve starts the HTTP plane on addr (e.g. "127.0.0.1:0") serving reg.
// It returns once the listener is bound; requests are handled in the
// background until Close.
func Serve(addr string, reg *Registry) (*Plane, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	p := &Plane{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return p, nil
}

// Close shuts the plane down.
func (p *Plane) Close() error {
	return p.srv.Close()
}
