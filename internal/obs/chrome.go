package obs

import (
	"encoding/json"
	"time"
)

// chromeEvent is one Chrome trace-event ("X" = complete event). The format
// is understood by chrome://tracing and Perfetto: timestamps and durations
// in microseconds, pid/tid pick the lane a slice renders in.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace serializes the span tree as Chrome trace-event JSON
// (the `-trace-out` export of the profile command).
//
// Lane assignment: a child whose interval does not overlap an earlier
// sibling inherits its parent's lane, so a serial pipeline renders as one
// stacked row; overlapping siblings (parallel workers, concurrent DJoin
// chunks) get fresh lanes of their own, which makes fan-out visually
// obvious.
func ChromeTrace(root *Span) ([]byte, error) {
	var events []chromeEvent
	nextTID := 1
	epoch := root.Start

	var emit func(s *Span, tid int)
	emit = func(s *Span, tid int) {
		end := s.End
		if end.IsZero() {
			end = s.Start
		}
		args := map[string]any{"trace_id": s.ID}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.Rows >= 0 {
			args["rows"] = s.Rows
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		c := s.Counts()
		if c != (Counts{}) {
			args["counts"] = c
		}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "yat",
			Ph:   "X",
			TS:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(end.Sub(s.Start)) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
			Args: args,
		})
		kids := s.Children()
		var lastEnd time.Time
		for i, k := range kids {
			lane := tid
			if i > 0 && k.Start.Before(lastEnd) {
				lane = nextTID
				nextTID++
			}
			kEnd := k.End
			if kEnd.IsZero() {
				kEnd = k.Start
			}
			if kEnd.After(lastEnd) {
				lastEnd = kEnd
			}
			emit(k, lane)
		}
	}
	emit(root, 0)
	return json.MarshalIndent(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}
