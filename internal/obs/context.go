package obs

import "context"

type spanKey struct{}

// WithSpan returns a context carrying the span. The wire client reads it to
// tag outgoing fetch/push/pushbatch frames with the trace id, so
// wrapper-side work is attributed to the mediator operator that caused it.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span carried by the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceID returns the trace id carried by the context, or "".
func TraceID(ctx context.Context) string {
	if s := SpanFrom(ctx); s != nil {
		return s.ID
	}
	return ""
}
