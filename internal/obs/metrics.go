package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight, stdlib-only metrics registry: named counters,
// gauges and fixed-bucket histograms. It is fed by the mediator (per-query
// Stats, breaker transitions) and the wrapper servers (per-request timings)
// and served as a JSON snapshot on the /metrics endpoint of the HTTP plane.
//
// Get-or-create is lock-guarded; the hot path (Add/Set/Observe on an
// already-created instrument) is a single atomic op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (breaker state, pool size, ...).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultBuckets are histogram upper bounds in milliseconds, spanning
// sub-millisecond local evaluation up to multi-second wire round trips.
var DefaultBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram is a fixed-bucket histogram with cumulative-style bucket counts
// computed at snapshot time. Observations are atomic per bucket.
type Histogram struct {
	bounds []float64 // upper bounds; implicit +Inf overflow bucket at the end
	counts []atomic.Int64
	sum    atomic.Int64 // sum of observations in micro-units (value * 1000)
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation (same unit as the bucket bounds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(math.Round(v * 1000)))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram (DefaultBuckets), creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(DefaultBuckets)
		r.hists[name] = h
	}
	return h
}

// histSnapshot is the JSON shape of one histogram in a snapshot.
type histSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "le" bound → cumulative count
}

// Snapshot returns a point-in-time copy of every instrument, suitable for
// JSON encoding. Zero-count histogram buckets are elided.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := map[string]int64{}
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := map[string]int64{}
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := map[string]histSnapshot{}
	for name, h := range r.hists {
		hs := histSnapshot{Count: h.n.Load(), Sum: float64(h.sum.Load()) / 1000, Buckets: map[string]int64{}}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			if h.counts[i].Load() == 0 {
				continue
			}
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatBound(h.bounds[i])
			}
			hs.Buckets[le] = cum
		}
		if len(hs.Buckets) == 0 {
			hs.Buckets = nil
		}
		hists[name] = hs
	}
	return map[string]any{"counters": counters, "gauges": gauges, "histograms": hists}
}

func formatBound(b float64) string {
	bs, _ := json.Marshal(b)
	return string(bs)
}

// ServeHTTP serves the registry snapshot as JSON (the /metrics endpoint).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(r.Snapshot())
}
