package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndCounts(t *testing.T) {
	root := NewTrace("query")
	if root.ID == "" {
		t.Fatal("empty trace id")
	}
	a := root.NewChild("DJoin", "DJoin(...)")
	a.AddCounts(Counts{Pushes: 2, Tuples: 10})
	b := a.NewChild("chunk", "chunk [5 bindings]")
	b.AddCounts(Counts{Pushes: 1, Tuples: 5, CacheMisses: 1})
	b.Finish(5, nil)
	a.Finish(10, nil)
	c := root.NewChild("Project", "Project(x)")
	c.AddCounts(Counts{Fetches: 1})
	c.Finish(10, errors.New("boom"))
	root.Finish(10, nil)

	if b.ID != root.ID || c.ID != root.ID {
		t.Fatal("children must inherit the trace id")
	}
	total := root.TreeCounts()
	want := Counts{Fetches: 1, Pushes: 3, Tuples: 15, CacheMisses: 1}
	if total != want {
		t.Fatalf("TreeCounts = %+v, want %+v", total, want)
	}
	if n := root.SpanCount(); n != 4 {
		t.Fatalf("SpanCount = %d, want 4", n)
	}
	if c.Err != "boom" {
		t.Fatalf("Err = %q", c.Err)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("q")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.NewChild("worker", fmt.Sprintf("unit %d", i))
			s.AddCounts(Counts{Tuples: 1})
			s.Annotate("i", fmt.Sprint(i))
			s.Finish(-1, nil)
		}(i)
	}
	wg.Wait()
	root.Finish(-1, nil)
	if got := len(root.Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
	if tc := root.TreeCounts(); tc.Tuples != 32 {
		t.Fatalf("tuples = %d, want 32", tc.Tuples)
	}
}

func TestRender(t *testing.T) {
	root := NewTrace("query")
	d := root.NewChild("DJoin", "DJoin(free=x)")
	d.AddCounts(Counts{Pushes: 3, Tuples: 148, CacheHits: 2, CacheMisses: 1})
	d.Annotate("chunks", "3")
	d.Finish(148, nil)
	root.Finish(148, nil)
	out := Render(root)
	for _, want := range []string{"DJoin(free=x)", "rows=148", "pushes=3", "tuples=148", "cache=2/3", "chunks=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	// children indent below the root
	if !strings.Contains(out, "\n  DJoin") {
		t.Fatalf("child not indented:\n%s", out)
	}
}

func TestContextPropagation(t *testing.T) {
	if SpanFrom(context.Background()) != nil || SpanFrom(nil) != nil {
		t.Fatal("SpanFrom on empty/nil context must be nil")
	}
	if TraceID(context.Background()) != "" {
		t.Fatal("TraceID on empty context must be empty")
	}
	s := NewTrace("q")
	ctx := WithSpan(context.Background(), s)
	if SpanFrom(ctx) != s {
		t.Fatal("SpanFrom did not round-trip")
	}
	if TraceID(ctx) != s.ID {
		t.Fatal("TraceID mismatch")
	}
}

func TestChromeTrace(t *testing.T) {
	root := NewTrace("query")
	a := root.NewChild("Bind", "Bind(w)")
	time.Sleep(time.Millisecond)
	a.Finish(10, nil)
	// two overlapping "parallel" children: force distinct lanes
	b := root.NewChild("worker", "unit 0")
	c := root.NewChild("worker", "unit 1")
	time.Sleep(time.Millisecond)
	c.Finish(-1, nil)
	b.Finish(-1, nil)
	root.Finish(10, nil)

	raw, err := ChromeTrace(root)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(f.TraceEvents))
	}
	tids := map[string]int{}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("ph = %q, want X", e.Ph)
		}
		if e.Args["trace_id"] != root.ID {
			t.Fatalf("trace_id missing on %s", e.Name)
		}
		tids[fmt.Sprint(e.Args["detail"])] = e.TID
	}
	if tids["unit 0"] == tids["unit 1"] {
		t.Fatal("overlapping workers must get distinct lanes")
	}
}

func TestRegistryAndPlane(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queries_total").Add(3)
	if reg.Counter("queries_total").Value() != 3 {
		t.Fatal("counter get-or-create must return the same instrument")
	}
	reg.Gauge("breaker_o2").Set(1)
	h := reg.Histogram("query_ms")
	h.Observe(0.2)
	h.Observe(12)
	h.Observe(9999) // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("hist count = %d", h.Count())
	}

	p, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := http.Get("http://" + p.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     float64          `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["queries_total"] != 3 || snap.Gauges["breaker_o2"] != 1 {
		t.Fatalf("snapshot wrong: %s", body)
	}
	qh := snap.Histograms["query_ms"]
	if qh.Count != 3 || qh.Buckets["+Inf"] != 3 {
		t.Fatalf("histogram snapshot wrong: %s", body)
	}

	// pprof index must answer on the same plane
	resp2, err := http.Get("http://" + p.Addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp2.StatusCode)
	}
}

func TestObserver(t *testing.T) {
	o := NewObserver(nil)
	s := o.StartRequest("push", "t123")
	o.EndRequest(s, 7, nil)
	s2 := o.StartRequest("fetch", "")
	o.EndRequest(s2, -1, errors.New("nope"))

	spans := o.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].ID != "t123" || spans[0].Name != "push" || spans[0].Rows != 7 {
		t.Fatalf("span 0 wrong: %+v", spans[0])
	}
	if o.Reg.Counter("wire_requests_total").Value() != 2 ||
		o.Reg.Counter("wire_request_errors_total").Value() != 1 ||
		o.Reg.Counter("wire_rows_returned_total").Value() != 7 {
		t.Fatal("registry not fed")
	}
	// ring bound
	for i := 0; i < maxObserverSpans+10; i++ {
		o.EndRequest(o.StartRequest("push", ""), 0, nil)
	}
	if len(o.Spans()) != maxObserverSpans {
		t.Fatalf("ring = %d, want %d", len(o.Spans()), maxObserverSpans)
	}
}
