package obs

import "strings"

// LabelName composes an instrument name with one label, in the familiar
// brace form: LabelName("fd_queries", "tenant", "acme") returns
// "fd_queries{tenant=acme}". The label value is sanitized so a hostile
// tenant id cannot forge extra labels or corrupt the snapshot keyspace —
// the characters structuring the name are folded to '_'.
func LabelName(base, label, value string) string {
	return base + "{" + label + "=" + sanitizeLabel(value) + "}"
}

// labelStructural are the characters with structural meaning in a composed
// instrument name.
const labelStructural = "{}=,\"\n\r"

func sanitizeLabel(v string) string {
	if v == "" {
		return "unknown"
	}
	if !strings.ContainsAny(v, labelStructural) {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		if strings.ContainsRune(labelStructural, r) {
			b.WriteRune('_')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// TenantCounter returns the per-tenant variant of a counter: the front
// door's admission accounting creates one instrument per (metric, tenant)
// pair, so a shared /metrics snapshot breaks down by tenant without a
// separate metrics pipeline.
func (r *Registry) TenantCounter(base, tenant string) *Counter {
	return r.Counter(LabelName(base, "tenant", tenant))
}

// TenantGauge returns the per-tenant variant of a gauge.
func (r *Registry) TenantGauge(base, tenant string) *Gauge {
	return r.Gauge(LabelName(base, "tenant", tenant))
}

// TenantHistogram returns the per-tenant variant of a histogram.
func (r *Registry) TenantHistogram(base, tenant string) *Histogram {
	return r.Histogram(LabelName(base, "tenant", tenant))
}
