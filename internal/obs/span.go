// Package obs is the mediator's observability subsystem: per-operator
// tracing (span trees shaped like the executed plan), a lightweight metrics
// registry (counters, gauges, histograms — stdlib only) and an HTTP plane
// serving the registry as JSON next to net/http/pprof.
//
// The paper's whole argument (§5–§6, Figure 9) is quantitative — pushes
// saved, tuples shipped, rounds of rewriting — but global counters cannot
// say *where* a query spends its time or issues its pushes. A span tree
// attributes both to individual algebra operators: every operator
// evaluation opens a span carrying wall time, output rows and the source
// work (fetches, pushes, shipped tuples, cache hits, retries) performed
// inside it, with annotations for cache probes, batch chunks, retry
// recovery and breaker state. Under parallel execution, per-worker spans
// parent to the operator that fanned them out, and the trace id travels
// over the wire so wrapper-side request spans correlate with the mediator
// operator that caused them.
//
// Tracing is strictly opt-in and designed to cost one nil pointer check per
// operator evaluation when off (pinned by BenchmarkTraceOverhead).
package obs

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counts is the source-work accounting a span carries: the slice of the
// global algebra.Stats attributable to work performed directly inside the
// span (not inside its children). Summing Counts over a whole trace must
// reproduce the corresponding global counters exactly — pinned by
// TestProfileSumsMatchStats.
type Counts struct {
	Fetches     int `json:"fetches,omitempty"`      // whole documents shipped
	Pushes      int `json:"pushes,omitempty"`       // push round trips issued
	Tuples      int `json:"tuples,omitempty"`       // rows shipped by sources
	CacheHits   int `json:"cache_hits,omitempty"`   // pushes answered locally
	CacheMisses int `json:"cache_misses,omitempty"` // cache probes that missed
	Retries     int `json:"retries,omitempty"`      // transport retries
	Redials     int `json:"redials,omitempty"`      // stale-conn redials
}

// Add accumulates c2 into c.
func (c *Counts) Add(c2 Counts) {
	c.Fetches += c2.Fetches
	c.Pushes += c2.Pushes
	c.Tuples += c2.Tuples
	c.CacheHits += c2.CacheHits
	c.CacheMisses += c2.CacheMisses
	c.Retries += c2.Retries
	c.Redials += c2.Redials
}

// Attr is one span annotation (cache probe outcome, batch chunk size,
// breaker state, wrapper-side timing, ...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed unit of work: an operator evaluation, a fan-out worker,
// a batched push chunk, or a wrapper-side request. Spans form a tree shaped
// like the executed plan. A span is written by the goroutine evaluating it;
// concurrent children attach through the parent's lock, so span trees
// compose correctly under parallel execution.
type Span struct {
	ID     string // trace id; shared by every span of one trace
	Name   string // kind: operator name ("DJoin"), "worker", "chunk", "push", ...
	Detail string // operator Detail() or free-form description
	Start  time.Time
	End    time.Time
	Rows   int    // output rows; -1 when the span has no tabular output
	Err    string // non-empty when the unit failed

	mu     sync.Mutex
	counts Counts
	attrs  []Attr
	kids   []*Span
	first  time.Time // time the first output chunk left the operator (streaming)
}

// MarkFirstRow records the instant the span produced its first output row.
// Only the first call sticks; safe to call from the consumer goroutine of a
// streaming cursor. Materialized evaluation never calls it, so a zero First
// means "not streamed" in renderings.
func (s *Span) MarkFirstRow() {
	s.mu.Lock()
	if s.first.IsZero() {
		s.first = time.Now()
	}
	s.mu.Unlock()
}

// FirstRow returns the latency from span start to its first output row, and
// whether a first row was ever marked.
func (s *Span) FirstRow() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.first.IsZero() {
		return 0, false
	}
	return s.first.Sub(s.Start), true
}

// traceSeq disambiguates traces minted in the same nanosecond (and process).
var traceSeq atomic.Int64

// NewTrace starts a new root span with a fresh trace id.
func NewTrace(name string) *Span {
	return &Span{
		ID:    fmt.Sprintf("t%x-%x-%x", os.Getpid(), time.Now().UnixNano(), traceSeq.Add(1)),
		Name:  name,
		Start: time.Now(),
		Rows:  -1,
	}
}

// NewChild opens a child span; safe to call from concurrent workers.
func (s *Span) NewChild(name, detail string) *Span {
	k := &Span{ID: s.ID, Name: name, Detail: detail, Start: time.Now(), Rows: -1}
	s.mu.Lock()
	s.kids = append(s.kids, k)
	s.mu.Unlock()
	return k
}

// Finish closes the span with its output row count (-1: no tabular output)
// and failure, if any.
func (s *Span) Finish(rows int, err error) {
	s.End = time.Now()
	s.Rows = rows
	if err != nil {
		s.Err = err.Error()
	}
}

// Annotate attaches a key/value annotation.
func (s *Span) Annotate(key, value string) {
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AddCounts folds source-work counts into the span.
func (s *Span) AddCounts(c Counts) {
	s.mu.Lock()
	s.counts.Add(c)
	s.mu.Unlock()
}

// Counts returns the span's own counts (excluding children).
func (s *Span) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the span's child list.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.kids...)
}

// Duration is the span's wall time (0 until finished).
func (s *Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Walk visits the span tree in pre-order.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, k := range s.Children() {
		k.Walk(fn)
	}
}

// TreeCounts sums Counts over the whole subtree; for a root span this must
// equal the global execution counters.
func (s *Span) TreeCounts() Counts {
	var total Counts
	s.Walk(func(sp *Span) { total.Add(sp.Counts()) })
	return total
}

// SpanCount reports the number of spans in the subtree.
func (s *Span) SpanCount() int {
	n := 0
	s.Walk(func(*Span) { n++ })
	return n
}

// Render draws the span tree as an indented, annotated plan profile — the
// EXPLAIN ANALYZE rendering of the `profile` console command:
//
//	DJoin                                   12.3ms rows=148 pushes=3
//	  Bind(works, ...)                       1.2ms rows=148
//	  worker 0
//	    chunk [64 bindings]                  4.0ms pushes=1 tuples=64
func Render(s *Span) string {
	var b strings.Builder
	renderSpan(&b, s, 0)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	head := strings.Repeat("  ", depth)
	if s.Detail != "" {
		head += s.Detail
	} else {
		head += s.Name
	}
	b.WriteString(head)
	pad := 44 - len(head)
	if pad < 1 {
		pad = 1
	}
	b.WriteString(strings.Repeat(" ", pad))
	fmt.Fprintf(b, "%8s", s.Duration().Round(time.Microsecond))
	if s.Rows >= 0 {
		fmt.Fprintf(b, " rows=%d", s.Rows)
	}
	if first, ok := s.FirstRow(); ok {
		fmt.Fprintf(b, " first=%s", first.Round(time.Microsecond))
	}
	c := s.Counts()
	if c.Fetches > 0 {
		fmt.Fprintf(b, " fetches=%d", c.Fetches)
	}
	if c.Pushes > 0 {
		fmt.Fprintf(b, " pushes=%d", c.Pushes)
	}
	if c.Tuples > 0 {
		fmt.Fprintf(b, " tuples=%d", c.Tuples)
	}
	if c.CacheHits > 0 || c.CacheMisses > 0 {
		fmt.Fprintf(b, " cache=%d/%d", c.CacheHits, c.CacheHits+c.CacheMisses)
	}
	if c.Retries > 0 || c.Redials > 0 {
		fmt.Fprintf(b, " recovered=%d+%d", c.Retries, c.Redials)
	}
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	if s.Err != "" {
		fmt.Fprintf(b, " ERROR=%q", s.Err)
	}
	b.WriteByte('\n')
	kids := s.Children()
	// Concurrent children attach in completion order; render in start order
	// so the profile reads like the plan.
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	for _, k := range kids {
		renderSpan(b, k, depth+1)
	}
}
