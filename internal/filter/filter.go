// Package filter implements YAT filters: trees with variables used by the
// Bind operator (Section 3.1, Figure 4) to extract information from XML
// data. A filter node may require a label (or bind it to a label variable),
// bind the subtree or its atomic content to a tree variable, require a
// constant, or require a type (flexible type filtering). Filter items
// support multiple occurrence (*, one binding row per match), collect-stars
// (*($fields), binding the sequence of remaining elements), and vertical
// navigation at arbitrary depth (**, generalized-path-expression descent).
//
// Matching a filter against a tree yields a set of variable-binding rows —
// exactly the content of the Tab structure the Bind operator produces.
package filter

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// FNode is a filter node.
type FNode struct {
	Label    string     // required label; "" matches any label (content position)
	AnyLabel bool       // explicit wildcard label (%): any label, but a label is required
	LabelVar string     // bind the node's label to this variable (~$l)
	Var      string     // bind the node (atom if leaf content, tree otherwise)
	Const    *data.Atom // require a leaf with exactly this atom
	Type     *pattern.P // require the subtree to match this type (@T)
	Items    []FItem    // child requirements
}

// FItem is one child requirement of a filter node.
type FItem struct {
	F          *FNode
	Star       bool   // multiple occurrence marker (one row per match)
	CollectVar string // bind the sequence of unclaimed matching children
	Descend    bool   // match any descendant instead of a direct child (**)
}

// Filter wraps a root filter node together with the model providing named
// type definitions for @Name type filters.
type Filter struct {
	Root  *FNode
	Model *pattern.Model
}

// New wraps a root node into a Filter.
func New(root *FNode) *Filter { return &Filter{Root: root} }

// WithModel sets the model used to resolve named type filters.
func (f *Filter) WithModel(m *pattern.Model) *Filter {
	f.Model = m
	return f
}

// Vars returns the filter's variables in pre-order (the Tab column order
// of the Bind that uses this filter).
func (f *Filter) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walk func(n *FNode)
	walk = func(n *FNode) {
		if n == nil {
			return
		}
		add(n.LabelVar)
		add(n.Var)
		for _, it := range n.Items {
			add(it.CollectVar)
			walk(it.F)
		}
	}
	walk(f.Root)
	return out
}

// Clone deep-copies the filter (sharing the model and type patterns, which
// are immutable by convention).
func (f *Filter) Clone() *Filter {
	return &Filter{Root: f.Root.Clone(), Model: f.Model}
}

// Clone deep-copies a filter node.
func (n *FNode) Clone() *FNode {
	if n == nil {
		return nil
	}
	c := *n
	c.Items = make([]FItem, len(n.Items))
	for i, it := range n.Items {
		c.Items[i] = FItem{F: it.F.Clone(), Star: it.Star, CollectVar: it.CollectVar, Descend: it.Descend}
	}
	return &c
}

// Env is one set of variable bindings produced by a match.
type Env map[string]tab.Cell

func (e Env) clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Match matches the filter against a tree and returns the binding rows as a
// Tab whose columns are the filter's variables. The store (may be nil)
// resolves references encountered during navigation, e.g. the owners of an
// artifact.
func (f *Filter) Match(store *data.Store, n *data.Node) *tab.Tab {
	m := &matchCtx{model: f.Model, store: store}
	envs := m.matchNode(f.Root, n)
	cols := f.Vars()
	t := tab.New(cols...)
	for _, e := range envs {
		row := make(tab.Row, len(cols))
		for i, c := range cols {
			if cell, ok := e[c]; ok {
				row[i] = cell
			} else {
				row[i] = tab.Null()
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MatchForest matches the filter against each tree of a forest and
// concatenates the binding rows.
func (f *Filter) MatchForest(store *data.Store, forest data.Forest) *tab.Tab {
	t := tab.New(f.Vars()...)
	for _, n := range forest {
		u := f.Match(store, n)
		t.Rows = append(t.Rows, u.Rows...)
	}
	return t
}

type matchCtx struct {
	model *pattern.Model
	store *data.Store
}

// matchNode returns all binding environments under which n matches fn, or
// nil when it does not match.
func (m *matchCtx) matchNode(fn *FNode, n *data.Node) []Env {
	if fn == nil || n == nil {
		return nil
	}
	// A reference is transparent: navigation (items), type and constant
	// requirements chase it through the store.
	if n.IsRef() && (len(fn.Items) > 0 || fn.Type != nil || fn.Const != nil) {
		if m.store == nil {
			return nil
		}
		target := m.store.Deref(n)
		if target == nil {
			return nil
		}
		n = target
	}
	// Label requirement.
	switch {
	case fn.AnyLabel:
		if n.Label == "" {
			return nil
		}
	case fn.Label != "":
		if n.Label != fn.Label {
			return nil
		}
	}
	if fn.Const != nil {
		a, ok := n.AtomValue()
		if !ok || !a.Equal(*fn.Const) {
			return nil
		}
	}
	if fn.Type != nil && !pattern.MatchData(m.model, fn.Type, n) {
		return nil
	}
	base := Env{}
	if fn.LabelVar != "" {
		base[fn.LabelVar] = tab.AtomCell(data.String(n.Label))
	}
	if fn.Var != "" {
		base[fn.Var] = bindCell(n)
	}
	if len(fn.Items) == 0 {
		return []Env{base}
	}
	kids := n.Kids
	if n.IsLeaf() {
		// A leaf exposes its content as one virtual unlabeled child, so
		// that `title: $t` binds the atom of <title>Nympheas</title>.
		kids = []*data.Node{{Atom: n.Atom}}
	}
	return m.matchItems(fn.Items, kids, base)
}

// bindCell binds a node to a cell: atoms for unlabeled leaves (content
// positions), trees otherwise.
func bindCell(n *data.Node) tab.Cell {
	if n.Atom != nil && n.Label == "" {
		return tab.AtomCell(*n.Atom)
	}
	return tab.TreeCell(n)
}

// matchItems matches the item list against the child list and returns the
// cross product of per-item binding sets, each extended with base.
func (m *matchCtx) matchItems(items []FItem, kids []*data.Node, base Env) []Env {
	claimed := make([]bool, len(kids))
	perItem := make([][]Env, 0, len(items))
	// First pass: structural items claim children.
	for _, it := range items {
		if it.CollectVar != "" {
			continue
		}
		var envs []Env
		if it.Descend {
			for _, k := range kids {
				m.descend(it.F, k, &envs)
			}
		} else {
			for ki, k := range kids {
				if sub := m.matchNode(it.F, k); len(sub) > 0 {
					claimed[ki] = true
					envs = append(envs, sub...)
				}
			}
		}
		if len(envs) == 0 {
			return nil // a required item found no match: the node fails
		}
		perItem = append(perItem, envs)
	}
	// Second pass: collect-stars bind the unclaimed children.
	for _, it := range items {
		if it.CollectVar == "" {
			continue
		}
		var seq data.Forest
		for ki, k := range kids {
			if claimed[ki] {
				continue
			}
			if it.F != nil && !m.shapeMatches(it.F, k) {
				continue
			}
			seq = append(seq, k)
		}
		perItem = append(perItem, []Env{{it.CollectVar: tab.SeqCell(seq)}})
	}
	// Fast paths for the dominant shapes: a single item list over an empty
	// base (the document-iteration star), and all-singleton item lists (one
	// match per child requirement) — both avoid the general cross product's
	// intermediate map churn.
	if len(perItem) == 1 && len(base) == 0 {
		return perItem[0]
	}
	allSingle := true
	for _, envs := range perItem {
		if len(envs) != 1 {
			allSingle = false
			break
		}
	}
	if allSingle {
		merged := base.clone()
		for _, envs := range perItem {
			for k, v := range envs[0] {
				if prev, ok := merged[k]; ok && !prev.Equal(v) {
					return nil
				}
				merged[k] = v
			}
		}
		return []Env{merged}
	}
	// Cross product.
	out := []Env{base}
	for _, envs := range perItem {
		next := make([]Env, 0, len(out)*len(envs))
		for _, acc := range out {
			for _, e := range envs {
				merged := acc.clone()
				compatible := true
				for k, v := range e {
					if prev, ok := merged[k]; ok && !prev.Equal(v) {
						compatible = false
						break
					}
					merged[k] = v
				}
				if compatible {
					next = append(next, merged)
				}
			}
		}
		out = next
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// descend collects matches of fn against k and all its descendants.
func (m *matchCtx) descend(fn *FNode, k *data.Node, envs *[]Env) {
	if k == nil {
		return
	}
	if sub := m.matchNode(fn, k); len(sub) > 0 {
		*envs = append(*envs, sub...)
	}
	target := k
	if k.IsRef() && m.store != nil {
		if t := m.store.Deref(k); t != nil {
			target = t
		}
	}
	for _, kid := range target.Kids {
		m.descend(fn, kid, envs)
	}
}

// shapeMatches reports whether a collect-star's inner filter accepts a
// child, considering only label, constant and type requirements (collect
// filters bind no variables; enforced by the parser).
func (m *matchCtx) shapeMatches(fn *FNode, n *data.Node) bool {
	if fn.Label == "" && !fn.AnyLabel && fn.Const == nil && fn.Type == nil && len(fn.Items) == 0 {
		return true
	}
	return len(m.matchNode(fn, n)) > 0
}

// ---------------------------------------------------------------------------
// Structural helpers for the optimizer (Section 5.1 rewritings)
// ---------------------------------------------------------------------------

// Depth returns the filter tree height.
func (n *FNode) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, it := range n.Items {
		if kd := it.F.Depth(); kd > d {
			d = kd
		}
	}
	return d + 1
}

// HasVars reports whether the subtree binds any variable.
func (n *FNode) HasVars() bool {
	if n == nil {
		return false
	}
	if n.Var != "" || n.LabelVar != "" {
		return true
	}
	for _, it := range n.Items {
		if it.CollectVar != "" || it.F.HasVars() {
			return true
		}
	}
	return false
}

// HasConstraints reports whether the subtree carries a constant or type
// requirement anywhere; such items filter rows and cannot be dropped by
// projection-driven simplification even when their variables are unused.
func (n *FNode) HasConstraints() bool {
	if n == nil {
		return false
	}
	if n.Const != nil || n.Type != nil {
		return true
	}
	for _, it := range n.Items {
		if it.F.HasConstraints() {
			return true
		}
	}
	return false
}

// VarsBelow returns the variables bound in the subtree, pre-order.
func (n *FNode) VarsBelow() []string {
	f := Filter{Root: n}
	return f.Vars()
}

// String renders the filter in the textual syntax accepted by Parse.
func (f *Filter) String() string { return f.Root.String() }

// String renders a filter node.
func (n *FNode) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *FNode) write(b *strings.Builder) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	head := false
	switch {
	case n.LabelVar != "":
		b.WriteByte('~')
		b.WriteString(n.LabelVar)
		head = true
	case n.AnyLabel:
		b.WriteByte('%')
		head = true
	case n.Label != "":
		b.WriteString(n.Label)
		head = true
	}
	if n.Var != "" {
		if head {
			b.WriteByte('@')
		}
		b.WriteString(n.Var)
		head = true
	}
	if n.Const != nil {
		if n.Const.Kind == data.KindString {
			fmt.Fprintf(b, "%q", n.Const.S)
		} else {
			b.WriteString(n.Const.Text())
		}
		head = true
	}
	if n.Type != nil {
		b.WriteByte('@')
		b.WriteString(typeName(n.Type))
		head = true
	}
	if !head {
		b.WriteByte('%') // unreachable in parsed filters; defensive
	}
	if len(n.Items) == 0 {
		return
	}
	if len(n.Items) == 1 && !n.Items[0].Star && n.Items[0].CollectVar == "" &&
		!n.Items[0].Descend && len(n.Items[0].F.Items) == 0 {
		b.WriteString(": ")
		n.Items[0].F.write(b)
		return
	}
	b.WriteString("[ ")
	for i, it := range n.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.CollectVar != "":
			b.WriteString("*(")
			b.WriteString(it.CollectVar)
			b.WriteString(")")
		default:
			if it.Star {
				b.WriteByte('*')
			}
			if it.Descend {
				b.WriteString("**")
			}
			it.F.write(b)
		}
	}
	b.WriteString(" ]")
}

func typeName(p *pattern.P) string {
	switch p.Kind {
	case pattern.KInt:
		return "Int"
	case pattern.KFloat:
		return "Float"
	case pattern.KBool:
		return "Bool"
	case pattern.KString:
		return "String"
	case pattern.KAny:
		return "Any"
	case pattern.KRef:
		return p.Name
	default:
		return "(" + p.String() + ")"
	}
}

// SortVars sorts a variable list in place and returns it; a convenience
// for comparing variable sets in tests and rewritings.
func SortVars(vs []string) []string {
	sort.Strings(vs)
	return vs
}
