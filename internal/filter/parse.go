package filter

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/pattern"
)

// The textual filter syntax, used by tests, the YATL translator and the
// mediator console. Examples (cf. the queries of Sections 2 and 5):
//
//	works[ *work[ artist: $a, title: $t, style: $s, size: $si, *($fields) ] ]
//	doc.work[ title: $t, more.cplace: $cl ]
//	set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]
//	person.tuple[ ~$attr: $v ]          — label variables (semistructured query)
//	work[ style: "Impressionist" ]      — constants
//	work[ price: $p@Float ]             — type filters
//	doc.**.technique: $x                — descent at any depth (GPE)
//	work@$w[ title: $t ]                — bind the work subtree itself to $w
type ftok struct {
	kind string // "name","var","str","num","punct","eof"
	text string
	pos  int
}

func flex(src string) ([]ftok, error) {
	var toks []ftok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			if i+1 < len(src) && src[i+1] == '*' {
				toks = append(toks, ftok{"punct", "**", i})
				i += 2
			} else {
				toks = append(toks, ftok{"punct", "*", i})
				i++
			}
		case strings.IndexByte("[]():,.~%@", c) >= 0:
			toks = append(toks, ftok{"punct", string(c), i})
			i++
		case c == '$':
			start := i
			i++
			for i < len(src) && (isWord(src[i]) || src[i] == '\'') {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("filter: empty variable at offset %d", start)
			}
			toks = append(toks, ftok{"var", src[start:i], start})
		case c == '"':
			start := i
			i++
			var b strings.Builder
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' && i+1 < len(src) {
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("filter: unterminated string at offset %d", start)
			}
			i++
			toks = append(toks, ftok{"str", b.String(), start})
		case c >= '0' && c <= '9' || c == '-':
			start := i
			i++
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				// Keep "1897" and "29.2"; a trailing ".label" path after an
				// integer is ambiguous and unsupported — filters never
				// navigate below constants.
				i++
			}
			toks = append(toks, ftok{"num", src[start:i], start})
		case isWordStart(c):
			start := i
			for i < len(src) && (isWord(src[i]) || src[i] == '\'') {
				i++
			}
			toks = append(toks, ftok{"name", src[start:i], start})
		default:
			return nil, fmt.Errorf("filter: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, ftok{"eof", "", i})
	return toks, nil
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWord(c byte) bool {
	return isWordStart(c) || c == '-' || (c >= '0' && c <= '9')
}

type fparser struct {
	toks []ftok
	i    int
}

func (p *fparser) cur() ftok { return p.toks[p.i] }

func (p *fparser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == "punct" && t.text == s
}

func (p *fparser) eat(s string) error {
	if !p.isPunct(s) {
		return fmt.Errorf("filter: expected %q at offset %d, got %q", s, p.cur().pos, p.cur().text)
	}
	p.i++
	return nil
}

// Parse parses a filter in the textual syntax.
func Parse(src string) (*Filter, error) {
	toks, err := flex(src)
	if err != nil {
		return nil, err
	}
	p := &fparser{toks: toks}
	root, err := p.node()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("filter: trailing input at offset %d", p.cur().pos)
	}
	f := New(root)
	if err := validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

// MustParse is Parse panicking on error, for fixtures and tests.
func MustParse(src string) *Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func validate(f *Filter) error {
	seen := map[string]string{} // var -> kind ("tree","label","collect")
	var walk func(n *FNode) error
	record := func(v, kind string) error {
		if v == "" {
			return nil
		}
		if prev, ok := seen[v]; ok {
			return fmt.Errorf("filter: variable %s bound twice (%s and %s); filters require distinct variables", v, prev, kind)
		}
		seen[v] = kind
		return nil
	}
	walk = func(n *FNode) error {
		if n == nil {
			return nil
		}
		if err := record(n.Var, "tree"); err != nil {
			return err
		}
		if err := record(n.LabelVar, "label"); err != nil {
			return err
		}
		for _, it := range n.Items {
			if err := record(it.CollectVar, "collect"); err != nil {
				return err
			}
			if it.CollectVar != "" && it.F != nil && it.F.HasVars() {
				return fmt.Errorf("filter: collect-star *(%s) cannot bind inner variables", it.CollectVar)
			}
			if err := walk(it.F); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(f.Root)
}

// node parses one filter node including dotted descent and tails.
func (p *fparser) node() (*FNode, error) {
	n, err := p.head()
	if err != nil {
		return nil, err
	}
	cur := n
	for {
		switch {
		case p.isPunct("."):
			p.i++
			descend := false
			if p.isPunct("**") {
				p.i++
				descend = true
				if err := p.eat("."); err != nil {
					return nil, err
				}
			}
			kid, err := p.head()
			if err != nil {
				return nil, err
			}
			cur.Items = append(cur.Items, FItem{F: kid, Descend: descend})
			cur = kid
		case p.isPunct("["):
			p.i++
			items, err := p.items()
			if err != nil {
				return nil, err
			}
			if err := p.eat("]"); err != nil {
				return nil, err
			}
			cur.Items = append(cur.Items, items...)
			return n, nil
		case p.isPunct(":"):
			p.i++
			kid, err := p.node()
			if err != nil {
				return nil, err
			}
			cur.Items = append(cur.Items, FItem{F: kid})
			return n, nil
		default:
			return n, nil
		}
	}
}

// head parses the label/variable/constant/type core of a node.
func (p *fparser) head() (*FNode, error) {
	t := p.cur()
	n := &FNode{}
	switch {
	case t.kind == "name":
		p.i++
		n.Label = t.text
	case t.kind == "var":
		p.i++
		n.Var = t.text
	case t.kind == "str":
		p.i++
		a := data.String(t.text)
		n.Const = &a
	case t.kind == "num":
		p.i++
		a, err := numAtom(t.text)
		if err != nil {
			return nil, fmt.Errorf("filter: %v at offset %d", err, t.pos)
		}
		n.Const = &a
	case p.isPunct("%"):
		p.i++
		n.AnyLabel = true
	case p.isPunct("~"):
		p.i++
		v := p.cur()
		if v.kind != "var" {
			return nil, fmt.Errorf("filter: expected variable after '~' at offset %d", v.pos)
		}
		p.i++
		n.LabelVar = v.text
	case p.isPunct("@"):
		// type-only content node, e.g. `owners: @Any`
	default:
		return nil, fmt.Errorf("filter: unexpected %q at offset %d", t.text, t.pos)
	}
	// '@' suffixes: bind the node (@$v) or constrain its type (@T).
	for p.isPunct("@") {
		p.i++
		s := p.cur()
		switch s.kind {
		case "var":
			if n.Var != "" {
				return nil, fmt.Errorf("filter: node bound twice at offset %d", s.pos)
			}
			n.Var = s.text
			p.i++
		case "name":
			if n.Type != nil {
				return nil, fmt.Errorf("filter: two type filters at offset %d", s.pos)
			}
			n.Type = typeByName(s.text)
			p.i++
		default:
			return nil, fmt.Errorf("filter: expected variable or type after '@' at offset %d", s.pos)
		}
	}
	return n, nil
}

func numAtom(text string) (data.Atom, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return data.Atom{}, fmt.Errorf("bad number %q", text)
		}
		return data.Float(f), nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return data.Atom{}, fmt.Errorf("bad number %q", text)
	}
	return data.Int(v), nil
}

func typeByName(name string) *pattern.P {
	switch name {
	case "Int":
		return pattern.Int()
	case "Float":
		return pattern.Float()
	case "Bool":
		return pattern.Bool()
	case "String":
		return pattern.Str()
	case "Any":
		return pattern.Any()
	default:
		return pattern.Ref(name)
	}
}

func (p *fparser) items() ([]FItem, error) {
	var items []FItem
	if p.isPunct("]") {
		return items, nil
	}
	for {
		it := FItem{}
		switch {
		case p.isPunct("*"):
			p.i++
			if p.isPunct("(") {
				p.i++
				v := p.cur()
				if v.kind != "var" {
					return nil, fmt.Errorf("filter: expected variable in *( ) at offset %d", v.pos)
				}
				p.i++
				if err := p.eat(")"); err != nil {
					return nil, err
				}
				it.CollectVar = v.text
				it.Star = true
			} else {
				it.Star = true
				if p.isPunct("**") {
					p.i++
					it.Descend = true
				}
				f, err := p.node()
				if err != nil {
					return nil, err
				}
				it.F = f
			}
		case p.isPunct("**"):
			p.i++
			it.Descend = true
			f, err := p.node()
			if err != nil {
				return nil, err
			}
			it.F = f
		default:
			f, err := p.node()
			if err != nil {
				return nil, err
			}
			it.F = f
		}
		items = append(items, it)
		if p.isPunct(",") {
			p.i++
			continue
		}
		return items, nil
	}
}
