package filter

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// figure1Works is the XML collection of works from Figure 1: two Monet
// paintings, one with a cplace field, the other with a history field.
func figure1Works() *data.Node {
	return data.Elem("works",
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Nympheas"),
			data.Text("style", "Impressionist"),
			data.Text("size", "21 x 61"),
			data.Text("cplace", "Giverny"),
		),
		data.Elem("work",
			data.Text("artist", "Claude Monet"),
			data.Text("title", "Waterloo Bridge"),
			data.Text("style", "Impressionist"),
			data.Text("size", "29.2 x 46.4"),
			data.Elem("history",
				data.Text("", "Painted with"),
				data.Text("technique", "Oil on canvas"),
				data.Text("", "in ..."),
			),
		),
	)
}

// figure4Filter is the Bind filter of Figure 4.
const figure4Filter = `works[ *work[ artist: $a, title: $t, style: $s, size: $si, *($fields) ] ]`

func TestFigure4Bind(t *testing.T) {
	f := MustParse(figure4Filter)
	got := f.Match(nil, figure1Works())
	if strings.Join(got.Cols, " ") != "$a $t $s $si $fields" {
		t.Fatalf("cols = %v", got.Cols)
	}
	if got.Len() != 2 {
		t.Fatalf("rows = %d\n%s", got.Len(), got)
	}
	r0 := got.Rows[0]
	if a, _ := r0[0].AsAtom(); a.S != "Claude Monet" {
		t.Errorf("$a = %v", r0[0])
	}
	if a, _ := r0[1].AsAtom(); a.S != "Nympheas" {
		t.Errorf("$t = %v", r0[1])
	}
	// $fields of the first work is the collection holding cplace
	if r0[4].Kind != tab.CSeq || len(r0[4].Seq) != 1 || r0[4].Seq[0].Label != "cplace" {
		t.Errorf("$fields = %v", r0[4])
	}
	r1 := got.Rows[1]
	if a, _ := r1[1].AsAtom(); a.S != "Waterloo Bridge" {
		t.Errorf("row1 $t = %v", r1[1])
	}
	if r1[4].Kind != tab.CSeq || len(r1[4].Seq) != 1 || r1[4].Seq[0].Label != "history" {
		t.Errorf("row1 $fields = %v", r1[4])
	}
}

func TestBindLeafContent(t *testing.T) {
	f := MustParse(`work[ title: $t ]`)
	got := f.Match(nil, figure1Works().Kids[0])
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	c := got.Rows[0][0]
	if c.Kind != tab.CAtom || c.Atom.S != "Nympheas" {
		t.Errorf("leaf content binds as atom, got %v", c)
	}
}

func TestBindSubtreeVariable(t *testing.T) {
	f := MustParse(`works[ *work@$w[ title: $t ] ]`)
	got := f.Match(nil, figure1Works())
	if got.Len() != 2 {
		t.Fatalf("rows = %d", got.Len())
	}
	w := got.Rows[0][got.ColIndex("$w")]
	if w.Kind != tab.CTree || w.Tree.Label != "work" {
		t.Errorf("$w = %v", w)
	}
}

func TestBindMissingMandatoryFails(t *testing.T) {
	f := MustParse(`work[ title: $t, cplace: $cl ]`)
	// first work has cplace, second does not
	works := figure1Works()
	if got := f.Match(nil, works.Kids[0]); got.Len() != 1 {
		t.Errorf("work with cplace: rows = %d", got.Len())
	}
	if got := f.Match(nil, works.Kids[1]); got.Len() != 0 {
		t.Errorf("work without cplace: rows = %d, want 0", got.Len())
	}
}

func TestBindConstants(t *testing.T) {
	works := figure1Works()
	f := MustParse(`work[ style: "Impressionist", title: $t ]`)
	if got := f.Match(nil, works.Kids[0]); got.Len() != 1 {
		t.Error("matching constant must succeed")
	}
	g := MustParse(`work[ style: "Cubist", title: $t ]`)
	if got := g.Match(nil, works.Kids[0]); got.Len() != 0 {
		t.Error("non-matching constant must fail")
	}
	n := data.Elem("work", data.IntLeaf("year", 1897))
	h := MustParse(`work[ year: 1897 ]`)
	if got := h.Match(nil, n); got.Len() != 1 {
		t.Error("integer constant must match")
	}
}

func TestBindTypeFilters(t *testing.T) {
	n := data.Elem("work",
		data.IntLeaf("year", 1897),
		data.Text("title", "Nympheas"),
	)
	if got := MustParse(`work[ year: $y@Int ]`).Match(nil, n); got.Len() != 1 {
		t.Error("Int type filter should accept 1897")
	}
	if got := MustParse(`work[ title: $t@Int ]`).Match(nil, n); got.Len() != 0 {
		t.Error("Int type filter should reject a string title")
	}
	if got := MustParse(`work[ title: $t@String ]`).Match(nil, n); got.Len() != 1 {
		t.Error("String type filter should accept the title")
	}
	// Named type resolved through the filter's model
	m := pattern.MustParseModel(`model test
Year := Symbol: Int`)
	f := MustParse(`work[ %@Year ]`).WithModel(m)
	if got := f.Match(nil, n); got.Len() != 1 {
		t.Errorf("named type filter: rows = %d", got.Len())
	}
}

func TestLabelVariables(t *testing.T) {
	// Figure 7 (lower right): retrieve the attribute names of person objects.
	person := data.Elem("tuple",
		data.Text("name", "Doctor X"),
		data.FloatLeaf("auction", 1500000),
	)
	f := MustParse(`tuple[ *~$attr: $v ]`)
	got := f.Match(nil, person)
	if got.Len() != 2 {
		t.Fatalf("rows = %d\n%s", got.Len(), got)
	}
	labels := []string{}
	for _, r := range got.Rows {
		a, _ := r[0].AsAtom()
		labels = append(labels, a.S)
	}
	if strings.Join(labels, ",") != "name,auction" {
		t.Errorf("attribute names = %v", labels)
	}
}

func TestWildcardLabel(t *testing.T) {
	n := data.Elem("work", data.Text("title", "X"), data.Text("artist", "Y"))
	got := MustParse(`work[ *%@$any ]`).Match(nil, n)
	if got.Len() != 2 {
		t.Errorf("wildcard matched %d children, want 2", got.Len())
	}
}

func TestDescend(t *testing.T) {
	works := figure1Works()
	// technique is nested under history under work: GPE-style descent
	f := MustParse(`works.**.technique: $x`)
	got := f.Match(nil, works)
	if got.Len() != 1 {
		t.Fatalf("descend rows = %d", got.Len())
	}
	if a, _ := got.Rows[0][0].AsAtom(); a.S != "Oil on canvas" {
		t.Errorf("$x = %v", got.Rows[0][0])
	}
	// descent finds nodes at multiple depths
	deep := data.Elem("a", data.Elem("x", data.Text("k", "1")), data.Elem("b", data.Elem("x", data.Text("k", "2"))))
	g := MustParse(`a[ **x[ k: $k ] ]`)
	if got := g.Match(nil, deep); got.Len() != 2 {
		t.Errorf("nested descent rows = %d", got.Len())
	}
}

func TestIterateStarCartesian(t *testing.T) {
	n := data.Elem("pairs",
		data.Elem("l", data.Text("v", "1")),
		data.Elem("l", data.Text("v", "2")),
		data.Elem("r", data.Text("v", "a")),
	)
	f := MustParse(`pairs[ *l[ v: $x ], *r[ v: $y ] ]`)
	got := f.Match(nil, n)
	if got.Len() != 2 {
		t.Fatalf("cartesian rows = %d\n%s", got.Len(), got)
	}
}

func TestJoinVariableWithinFilter(t *testing.T) {
	// The same variable may not be bound twice; the parser rejects it.
	if _, err := Parse(`work[ a: $x, b: $x ]`); err == nil {
		t.Error("duplicate variable must be rejected")
	}
}

func TestReferencesThroughStore(t *testing.T) {
	p1 := data.Elem("person", data.Text("name", "Doctor X")).WithID("p1")
	root := data.Elem("db",
		p1,
		data.Elem("artifact",
			data.Text("title", "Nympheas"),
			data.Elem("owners", data.RefNode("ref", "p1")),
		),
	)
	store := data.NewStore()
	store.Register(root)
	f := MustParse(`artifact[ title: $t, owners[ *%[ name: $n ] ] ]`)
	got := f.Match(store, root.Kids[1])
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	if a, _ := got.Rows[0][1].AsAtom(); a.S != "Doctor X" {
		t.Errorf("$n through reference = %v", got.Rows[0][1])
	}
	// Without a store, navigation through the reference fails.
	if got := f.Match(nil, root.Kids[1]); got.Len() != 0 {
		t.Error("reference navigation without store must fail")
	}
}

func TestCollectStarExcludesClaimed(t *testing.T) {
	w := figure1Works().Kids[0] // has cplace extra
	f := MustParse(`work[ title: $t, *($rest) ]`)
	got := f.Match(nil, w)
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	rest := got.Rows[0][1]
	if rest.Kind != tab.CSeq || len(rest.Seq) != 4 {
		t.Fatalf("$rest = %v (artist, style, size, cplace expected)", rest)
	}
	labels := []string{}
	for _, n := range rest.Seq {
		labels = append(labels, n.Label)
	}
	if strings.Join(labels, ",") != "artist,style,size,cplace" {
		t.Errorf("$rest labels = %v", labels)
	}
}

func TestCollectStarEmpty(t *testing.T) {
	n := data.Elem("work", data.Text("title", "T"))
	got := MustParse(`work[ title: $t, *($rest) ]`).Match(nil, n)
	if got.Len() != 1 {
		t.Fatalf("rows = %d", got.Len())
	}
	if got.Rows[0][1].Kind != tab.CSeq || len(got.Rows[0][1].Seq) != 0 {
		t.Errorf("empty collect = %v", got.Rows[0][1])
	}
}

func TestMatchForest(t *testing.T) {
	f := MustParse(`work[ title: $t ]`)
	forest := data.Forest(figure1Works().Kids)
	got := f.MatchForest(nil, forest)
	if got.Len() != 2 {
		t.Errorf("forest rows = %d", got.Len())
	}
}

func TestVarsOrder(t *testing.T) {
	f := MustParse(figure4Filter)
	if strings.Join(f.Vars(), " ") != "$a $t $s $si $fields" {
		t.Errorf("Vars = %v", f.Vars())
	}
	g := MustParse(`work@$w[ ~$l: $v, *($rest) ]`)
	if strings.Join(g.Vars(), " ") != "$w $l $v $rest" {
		t.Errorf("Vars = %v", g.Vars())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"work[",
		"work[ title: ]",
		"work[ *( ) ]",
		"work[ *(notavar) ]",
		"$",
		"~x",
		"work@",
		"work@$a@$b",
		"work@Int@Float",
		`work[ "unterminated ]`,
		"work] extra",
		"work[ a: $x ] trailing",
		"work..title",
		"1.2.3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestPrintParseStability(t *testing.T) {
	cases := []string{
		figure4Filter,
		`doc.work[ title: $t, more.cplace: $cl ]`,
		`set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]`,
		`tuple[ *~$attr: $v ]`,
		`work[ style: "Impressionist" ]`,
		`work[ year: 1897, price: 15.5 ]`,
		`work[ price: $p@Float ]`,
		`doc.**.technique: $x`,
		`work@$w[ title: $t ]`,
		`%[ $v ]`,
		`work[ owners: @Any ]`,
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := f.String()
		g, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q -> %q: %v", src, printed, err)
			continue
		}
		if g.String() != printed {
			t.Errorf("print/parse unstable: %q -> %q -> %q", src, printed, g.String())
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustParse(figure4Filter)
	c := f.Clone()
	c.Root.Items[0].F.Items[0].F.Label = "mutated"
	if f.String() == c.String() {
		t.Error("clone must be independent")
	}
}

func TestDepthAndHasVars(t *testing.T) {
	f := MustParse(figure4Filter)
	if d := f.Root.Depth(); d != 4 {
		t.Errorf("Depth = %d, want 4 (works/work/artist/content)", d)
	}
	if !f.Root.HasVars() {
		t.Error("figure-4 filter has vars")
	}
	g := MustParse(`work[ title: "X" ]`)
	if g.Root.HasVars() {
		t.Error("constant filter has no vars")
	}
}

func TestSharedVariableAcrossRowsConsistency(t *testing.T) {
	// Two items binding different vars on the same child set: rows must
	// pair consistently (cross product of matches).
	n := data.Elem("m", data.Text("a", "1"), data.Text("a", "2"))
	f := MustParse(`m[ *a: $x ]`)
	got := f.Match(nil, n)
	if got.Len() != 2 {
		t.Errorf("rows = %d", got.Len())
	}
}

func TestPropertyMatchDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		n := genDoc(seed)
		flt := MustParse(`doc[ *work[ title: $t, *($rest) ] ]`)
		a := flt.Match(nil, n)
		b := flt.Match(nil, n)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRowsBoundedByWorks(t *testing.T) {
	f := func(seed int64) bool {
		n := genDoc(seed)
		flt := MustParse(`doc[ *work[ title: $t ] ]`)
		got := flt.Match(nil, n)
		// one row per work with a title
		withTitle := 0
		for _, w := range n.Kids {
			if w.Child("title") != nil {
				withTitle++
			}
		}
		return got.Len() == withTitle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func genDoc(seed int64) *data.Node {
	s := seed
	next := func(n int64) int64 {
		s = s*6364136223846793005 + 1442695040888963407
		v := (s >> 33) % n
		if v < 0 {
			v = -v
		}
		return v
	}
	doc := data.Elem("doc")
	for i := int64(0); i < next(6); i++ {
		w := data.Elem("work")
		if next(4) != 0 {
			w.Add(data.Text("title", "T"+string(rune('a'+next(26)))))
		}
		if next(2) == 0 {
			w.Add(data.Text("cplace", "Giverny"))
		}
		if next(3) == 0 {
			w.Add(data.Text("history", "..."))
		}
		doc.Add(w)
	}
	return doc
}
