package o2wrap

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/o2"
	"repro/internal/pattern"
	"repro/internal/tab"
)

func wrapper() *Wrapper { return New("o2artifact", datagen.PaperDB()) }

func TestExportSchemaFigure3(t *testing.T) {
	w := wrapper()
	schema := w.ExportSchema()
	if len(schema.Names()) != 2 {
		t.Fatalf("classes = %v", schema.Names())
	}
	artifact := schema.Lookup("Artifact")
	want := pattern.MustParse(`class[ artifact: tuple[ title: String, year: Int, creator: String, price: Float, owners: list[ *&Person ] ] ]`)
	if artifact.String() != want.String() {
		t.Errorf("Artifact pattern = %s\nwant %s", artifact, want)
	}
	// Figure 3 instantiation chain: Artifact schema <: ODMG <: YAT.
	odmg := w.ExportModel()
	if !pattern.InstanceOfModel(odmg, schema) {
		t.Error("exported schema must instantiate the ODMG model")
	}
	if !pattern.InstanceOfModel(pattern.YATModel(), schema) {
		t.Error("exported schema must instantiate the YAT metamodel")
	}
}

func TestFetchShipsExtentAndClosure(t *testing.T) {
	w := wrapper()
	forest, err := w.Fetch("artifacts")
	if err != nil {
		t.Fatal(err)
	}
	// set tree + the two referenced persons
	if len(forest) != 3 {
		t.Fatalf("forest = %d trees", len(forest))
	}
	set := forest[0]
	if set.Label != "set" || len(set.Kids) != 3 {
		t.Fatalf("set = %s", set)
	}
	// The exported artifacts match the exported schema.
	schema := w.ExportSchema()
	for _, k := range set.Kids {
		if !pattern.MatchData(schema, schema.Lookup("Artifact"), k) {
			t.Errorf("exported artifact does not match schema: %s", k)
		}
	}
	for _, p := range forest[1:] {
		if !pattern.MatchData(schema, schema.Lookup("Person"), p) {
			t.Errorf("exported person does not match schema: %s", p)
		}
	}
	if _, err := w.Fetch("nosuch"); err == nil {
		t.Error("unknown extent must fail")
	}
}

func TestExportInterfaceRoundTrip(t *testing.T) {
	w := wrapper()
	i := w.ExportInterface()
	s := capability.Marshal(i)
	back, err := capability.Unmarshal(s)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, s)
	}
	if !back.HasOperation("bind") || !back.HasOperation("current_price") {
		t.Error("operations lost in round trip")
	}
	if _, ok := back.Binds["artifacts"]; !ok {
		t.Error("bindcap lost")
	}
	// The interface accepts the view1 artifacts filter (Section 4.1).
	f := filter.MustParse(view1ArtifactsFilter)
	if err := back.AcceptsFilter("artifacts", f); err != nil {
		t.Errorf("interface must accept the view1 filter: %v", err)
	}
}

const view1ArtifactsFilter = `set[ *class[ artifact.tuple[ title: $t, year: $y, creator: $c, price: $p,
	owners.list[ *class[ person.tuple[ name: $o, auction: $au ] ] ] ] ] ]`

// section41Plan is the left branch of Figure 5: Bind over artifacts under
// the year > 1800 selection.
func section41Plan() algebra.Op {
	return &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(view1ArtifactsFilter)},
		Pred: algebra.MustParseExpr(`$y > 1800`),
	}
}

func TestSection41PushGeneratesOQL(t *testing.T) {
	w := wrapper()
	res, err := w.Push(section41Plan(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Nympheas (2 owners) + Waterloo Bridge (1 owner) = 3 rows.
	if res.Len() != 3 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	oql := w.LastOQL
	for _, frag := range []string{"select", "from R1 in artifacts, R2 in R1.owners",
		"R1.title", "R2.name", "where R1.year > 1800"} {
		if !strings.Contains(oql, frag) {
			t.Errorf("OQL missing %q:\n%s", frag, oql)
		}
	}
}

func TestPushEquivalentToMediatorEvaluation(t *testing.T) {
	// The pushed plan must produce exactly the rows the mediator-side Bind
	// over the fetched document produces — the correctness contract of
	// capability-based rewriting.
	w := wrapper()
	plan := section41Plan()
	pushed, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := algebra.NewContext()
	ctx.Sources["o2artifact"] = w
	local, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pushed.EqualUnordered(local) {
		t.Errorf("pushed:\n%s\nlocal:\n%s", pushed, local)
	}
}

func TestPushWithParameters(t *testing.T) {
	// Information passing: $pt/$pa arrive from a DJoin's left side and are
	// inlined as OQL literals (Figure 9's right branch).
	w := wrapper()
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t2, creator: $c2, price: $p ] ] ]`)},
		Pred: algebra.MustParseExpr(`$t2 = $pt AND $c2 = $pa`),
	}
	params := map[string]tab.Cell{
		"$pt": tab.AtomCell(data.String("Nympheas")),
		"$pa": tab.AtomCell(data.String("Claude Monet")),
	}
	res, err := w.Push(plan, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	if !strings.Contains(w.LastOQL, `R1.title = "Nympheas"`) {
		t.Errorf("parameter not inlined:\n%s", w.LastOQL)
	}
	if a, _ := res.Rows[0][res.ColIndex("$p")].AsAtom(); a.AsFloat() != 1500000 {
		t.Errorf("price = %v", a)
	}
}

func TestPushMethodCall(t *testing.T) {
	w := wrapper()
	plan := &algebra.Project{
		From: &algebra.Select{
			From: &algebra.Bind{Doc: "artifacts",
				F: filter.MustParse(`set[ *class@$art[ artifact.tuple[ title: $t ] ] ]`)},
			Pred: algebra.MustParseExpr(`current_price($art) > 1000000`),
		},
		Cols: []string{"$t"},
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d\n%s", res.Len(), res)
	}
	if a, _ := res.Rows[0][0].AsAtom(); a.S != "Nympheas" {
		t.Errorf("title = %v", a)
	}
	if !strings.Contains(w.LastOQL, "current_price()") {
		t.Errorf("OQL missing method call:\n%s", w.LastOQL)
	}
}

func TestPushProjectionAndRename(t *testing.T) {
	w := wrapper()
	plan := &algebra.Project{
		From: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t, year: $y ] ] ]`)},
		Cols: []string{"title=$t"},
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Cols[0] != "title" || res.Len() != 3 {
		t.Fatalf("res = %s", res)
	}
}

func TestPushConstantFilter(t *testing.T) {
	w := wrapper()
	plan := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t, creator: "Claude Monet" ] ] ]`)}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
	if !strings.Contains(w.LastOQL, `R1.creator = "Claude Monet"`) {
		t.Errorf("constant not translated:\n%s", w.LastOQL)
	}
}

func TestPushObjectAndCollectionBindings(t *testing.T) {
	w := wrapper()
	plan := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class@$art[ artifact.tuple[ title: $t, owners@$ow ] ] ]`)}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	art := res.Rows[0][res.ColIndex("$art")]
	if art.Kind != tab.CTree || art.Tree.Label != "class" || art.Tree.ID == "" {
		t.Errorf("$art = %v", art)
	}
	ow := res.Rows[0][res.ColIndex("$ow")]
	if ow.Kind != tab.CTree || ow.Tree.Label != "owners" || ow.Tree.Child("list") == nil {
		t.Errorf("$ow = %v", ow)
	}
}

func TestPushRejectsUnsupportedShapes(t *testing.T) {
	w := wrapper()
	bad := []algebra.Op{
		&algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)},
		&algebra.Bind{Col: "$x", F: filter.MustParse(`works[ *work@$w ]`)},
		&algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ artifact.tuple[ ghost: $g ] ] ]`)},
		&algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ artifact.tuple[ *~$attr: $v ] ] ]`)},
		&algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ class[ artifact.tuple[ title: $t ] ] ]`)},
		&algebra.Bind{Doc: "artifacts", F: filter.MustParse(`wrong[ *class[ artifact.tuple[ title: $t ] ] ]`)},
		&algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ %[ tuple[ title: $t ] ] ] ]`)},
		&algebra.Select{
			From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
			Pred: algebra.MustParseExpr(`contains($t, "x")`)},
		&algebra.DJoin{
			L: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
			R: &algebra.Bind{Doc: "persons", F: filter.MustParse(`set[ *class[ person.tuple[ name: $n ] ] ]`)}},
	}
	for i, plan := range bad {
		if _, err := w.Push(plan, nil); err == nil {
			t.Errorf("case %d: Push should fail for %s", i, algebra.Describe(plan))
		}
	}
}

func TestExportVal(t *testing.T) {
	w := wrapper()
	oid := w.DB.Extents["artifacts"][0]
	tree := w.ExportObject(w.DB.Get(oid))
	if tree.ID != oid || tree.Label != "class" {
		t.Fatalf("tree = %s", tree)
	}
	tup := tree.Child("artifact").Child("tuple")
	if tup.Child("title").Atom.S != "Nympheas" {
		t.Errorf("title = %v", tup.Child("title"))
	}
	if tup.Child("year").Atom.Kind != data.KindInt {
		t.Errorf("year kind = %v", tup.Child("year").Atom.Kind)
	}
	list := tup.Child("owners").Child("list")
	if len(list.Kids) != 2 || !list.Kids[0].IsRef() {
		t.Errorf("owners = %s", tup.Child("owners"))
	}
}

func TestPushCrossExtentJoin(t *testing.T) {
	// OQL evaluates multi-extent joins natively: artists who are also
	// collectors (creator = person name).
	w := wrapper()
	// add a person named like an artist to make the join non-empty
	if _, err := w.DB.NewObject("Person",
		o2val("Claude Monet", 999)); err != nil {
		t.Fatal(err)
	}
	plan := &algebra.Join{
		L: &algebra.Bind{Doc: "artifacts",
			F: filter.MustParse(`set[ *class[ artifact.tuple[ title: $t, creator: $c ] ] ]`)},
		R: &algebra.Bind{Doc: "persons",
			F: filter.MustParse(`set[ *class[ person.tuple[ name: $n, auction: $au ] ] ]`)},
		Pred: algebra.MustParseExpr(`$c = $n`),
	}
	pushed, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.LastOQL, "from R1 in artifacts, R2 in persons") {
		t.Errorf("OQL lacks both ranges:\n%s", w.LastOQL)
	}
	if pushed.Len() != 2 {
		t.Fatalf("rows = %d (Nympheas + Waterloo Bridge by Monet)\n%s", pushed.Len(), pushed)
	}
	// agrees with mediator-side evaluation
	ctx := algebra.NewContext()
	ctx.Sources["o2artifact"] = w
	local, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pushed.EqualUnordered(local) {
		t.Errorf("pushed join disagrees:\n%s\nvs\n%s", pushed, local)
	}
}

func o2val(name string, auction float64) o2.Val {
	return o2.Tuple("name", o2.Str(name), "auction", o2.Float(auction))
}

func TestFuncsMethodCallback(t *testing.T) {
	w := wrapper()
	funcs := w.Funcs()
	fn, ok := funcs["current_price"]
	if !ok {
		t.Fatal("current_price not exported")
	}
	oid := w.DB.Extents["artifacts"][0]
	tree := w.ExportObject(w.DB.Get(oid))
	v, err := fn([]tab.Cell{tab.TreeCell(tree)})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := v.AsAtom()
	if a.AsFloat() < 1649999 || a.AsFloat() > 1650001 {
		t.Errorf("current_price = %v", a)
	}
	// errors: wrong arity, anonymous tree, unknown object
	if _, err := fn(nil); err == nil {
		t.Error("arity check")
	}
	if _, err := fn([]tab.Cell{tab.TreeCell(data.Elem("anon"))}); err == nil {
		t.Error("anonymous object must fail")
	}
	if _, err := fn([]tab.Cell{tab.TreeCell(data.Elem("x").WithID("ghost"))}); err == nil {
		t.Error("unknown object must fail")
	}
}

func TestPushPredicateVariants(t *testing.T) {
	w := wrapper()
	// OR / NOT / arithmetic / inequality predicates translate to OQL.
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t, year: $y, price: $p ] ] ]`)},
		Pred: algebra.MustParseExpr(
			`($y >= 1897 OR NOT ($p > 1000)) AND $p * 2 < 4000000 AND $t != "zzz"`),
	}
	res, err := w.Push(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := algebra.NewContext()
	ctx.Sources["o2artifact"] = w
	local, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EqualUnordered(local) || res.Len() == 0 {
		t.Errorf("pushed:\n%s\nlocal:\n%s", res, local)
	}
	for _, frag := range []string{" or ", "not (", "(R1.price * 2)"} {
		if !strings.Contains(w.LastOQL, frag) {
			t.Errorf("OQL missing %q:\n%s", frag, w.LastOQL)
		}
	}
	// non-atomic parameter is rejected
	bad := &algebra.Select{
		From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t ] ] ]`)},
		Pred: algebra.MustParseExpr(`$t = $seq`),
	}
	params := map[string]tab.Cell{"$seq": tab.SeqCell(nil)}
	if _, err := w.Push(bad, params); err == nil {
		t.Error("non-atomic parameter must fail")
	}
}
