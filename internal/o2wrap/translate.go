package o2wrap

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/nodetab"
	"repro/internal/o2"
	"repro/internal/tab"
)

// Push implements algebra.Source: it translates a pushed algebraic subplan
// (Project* / Select* over a Bind on one extent, exactly the shapes admitted
// by the capability interface) into a single OQL query, executes it, and
// converts the result back into a Tab. Free variables of the plan are
// resolved against params and inlined as literals — the "information
// passing" of Section 5.3, where a DJoin feeds left-hand bindings into the
// query pushed to O₂.
func (w *Wrapper) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	if nodetab.TouchesPlan(plan) {
		// Node-table plans bypass OQL: they evaluate against the cached
		// pre/post numbering of the extent (axis predicates are ordinary
		// comparisons there, including the range joins of descendant steps).
		return nodetab.Eval(plan, params, w.nodeTable)
	}
	tr := &translator{w: w, params: params, varInfo: map[string]varBinding{}}
	if err := tr.build(plan); err != nil {
		return nil, err
	}
	outCols := plan.Columns()
	q := &o2.Query{Ranges: tr.ranges}
	if len(tr.where) > 0 {
		q.Where = conjOQL(tr.where)
	}
	aliases := make([]string, len(outCols))
	for i, col := range outCols {
		vb, ok := tr.varInfo[col]
		if !ok {
			return nil, fmt.Errorf("o2wrap: output column %s is not bound by the pushed plan", col)
		}
		aliases[i] = fmt.Sprintf("c%d", i)
		q.Proj = append(q.Proj, o2.ProjItem{Name: aliases[i], E: vb.path})
	}
	w.setLastOQL(q.String())
	res, err := w.DB.Run(q)
	if err != nil {
		return nil, fmt.Errorf("o2wrap: %w", err)
	}
	out := tab.New(outCols...)
	for _, rv := range res.Elems {
		row := make(tab.Row, len(outCols))
		for i, col := range outCols {
			cell, err := w.valToCell(tr.varInfo[col], rv.Fields[aliases[i]])
			if err != nil {
				return nil, err
			}
			row[i] = cell
		}
		out.AddRow(row)
	}
	return out, nil
}

// varBinding records how an algebra variable maps to OQL: the path that
// computes it and the shape of the cell the mediator-side Bind would have
// produced (so pushed and unpushed plans are indistinguishable).
type varBinding struct {
	path  *o2.OPath
	kind  bindKind
	field string // for kField / kColl: the element label to reconstruct
}

type bindKind int

const (
	kAtom   bindKind = iota // content variable: an atomic cell
	kField                  // variable on a leaf field node: <field>v</field>
	kObject                 // variable on a class node: the whole object tree
	kColl                   // variable on a collection field: <field><list>..</list></field>
)

type translator struct {
	w       *Wrapper
	params  map[string]tab.Cell
	ranges  []o2.Range
	where   []o2.OExpr
	varInfo map[string]varBinding
	nextVar int
}

func (tr *translator) freshVar() string {
	tr.nextVar++
	return fmt.Sprintf("R%d", tr.nextVar)
}

func (tr *translator) build(op algebra.Op) error {
	// yat-lint:ignore intentionally partial: translates exactly the operations the OQL interface declares; the default refuses the push
	switch x := op.(type) {
	case *algebra.Project:
		if err := tr.build(x.From); err != nil {
			return err
		}
		// Apply renames new=old.
		for _, c := range x.Cols {
			if i := strings.IndexByte(c, '='); i >= 0 {
				if vb, ok := tr.varInfo[c[i+1:]]; ok {
					tr.varInfo[c[:i]] = vb
				}
			}
		}
		return nil
	case *algebra.Select:
		if err := tr.build(x.From); err != nil {
			return err
		}
		for _, conj := range algebra.SplitConj(x.Pred) {
			oe, err := tr.expr(conj)
			if err != nil {
				return err
			}
			tr.where = append(tr.where, oe)
		}
		return nil
	case *algebra.Bind:
		if x.Doc == "" {
			return fmt.Errorf("o2wrap: only binds over extents can be pushed")
		}
		cls := tr.w.DB.Schema.ClassByExtent(x.Doc)
		if cls == nil {
			return fmt.Errorf("o2wrap: unknown extent %q", x.Doc)
		}
		return tr.bindFilter(x.Doc, cls, x.F.Root)
	case *algebra.Join:
		// OQL is a full query language: a join of two extents of this
		// database becomes additional from-ranges plus where-conjuncts.
		if err := tr.build(x.L); err != nil {
			return err
		}
		if err := tr.build(x.R); err != nil {
			return err
		}
		for _, conj := range algebra.SplitConj(x.Pred) {
			oe, err := tr.expr(conj)
			if err != nil {
				return err
			}
			tr.where = append(tr.where, oe)
		}
		return nil
	default:
		return fmt.Errorf("o2wrap: operator %T cannot be pushed to OQL", op)
	}
}

// bindFilter handles the extent-level filter: set[ *class[ ... ] ].
func (tr *translator) bindFilter(extent string, cls *o2.Class, root *filter.FNode) error {
	if root.Label != "set" && root.Label != extent {
		return fmt.Errorf("o2wrap: extent filter must match the set, got %q", root.Label)
	}
	if len(root.Items) != 1 || !root.Items[0].Star {
		return fmt.Errorf("o2wrap: extent filter must iterate members (*class[...])")
	}
	v := tr.freshVar()
	tr.ranges = append(tr.ranges, o2.Range{Var: v, Path: &o2.OPath{Root: extent}})
	return tr.classFilter(v, cls, root.Items[0].F)
}

// classFilter handles class[ classname[ tuple[...] ] ].
func (tr *translator) classFilter(rangeVar string, cls *o2.Class, cn *filter.FNode) error {
	if cn.Label != "class" {
		return fmt.Errorf("o2wrap: expected class filter, got %q", cn.Label)
	}
	if cn.Var != "" {
		tr.varInfo[cn.Var] = varBinding{path: &o2.OPath{Root: rangeVar}, kind: kObject}
	}
	if len(cn.Items) == 0 {
		return nil
	}
	if len(cn.Items) != 1 || cn.Items[0].Star {
		return fmt.Errorf("o2wrap: class filter must name the class once")
	}
	nameNode := cn.Items[0].F
	if nameNode.Label == "" {
		return fmt.Errorf("o2wrap: class name must be ground (inst=ground)")
	}
	if len(nameNode.Items) == 0 {
		return nil
	}
	if len(nameNode.Items) != 1 {
		return fmt.Errorf("o2wrap: class body must be a single type filter")
	}
	body := nameNode.Items[0].F
	if body.Label == "tuple" {
		return tr.tupleFilter(rangeVar, cls.Type, body)
	}
	return fmt.Errorf("o2wrap: unsupported class body filter %q", body.Label)
}

// tupleFilter handles tuple[ field: ..., ... ] over a tuple type.
func (tr *translator) tupleFilter(rangeVar string, ty *o2.Type, tn *filter.FNode) error {
	for _, it := range tn.Items {
		if it.Star || it.CollectVar != "" || it.Descend {
			return fmt.Errorf("o2wrap: tuple attributes must be enumerated (inst=ground)")
		}
		fn := it.F
		if fn.Label == "" || fn.AnyLabel || fn.LabelVar != "" {
			return fmt.Errorf("o2wrap: attribute names must be ground")
		}
		fty := ty.Field(fn.Label)
		if fty == nil {
			return fmt.Errorf("o2wrap: unknown attribute %q", fn.Label)
		}
		path := &o2.OPath{Root: rangeVar, Steps: []o2.OStep{{Name: fn.Label}}}
		if fn.Var != "" {
			kind := kField
			if fty.Kind == o2.TColl {
				kind = kColl
			}
			tr.varInfo[fn.Var] = varBinding{path: path, kind: kind, field: fn.Label}
		}
		if fn.Const != nil {
			tr.where = append(tr.where, o2.OCmp{Op: "=", L: path, R: o2.OLit{V: atomToVal(*fn.Const)}})
		}
		if len(fn.Items) == 0 {
			continue
		}
		if len(fn.Items) != 1 {
			return fmt.Errorf("o2wrap: attribute %q has multiple content filters", fn.Label)
		}
		content := fn.Items[0]
		switch {
		case content.F != nil && content.F.Label == "" && !content.F.AnyLabel && content.F.Var != "":
			// atomic content variable: title: $t
			tr.varInfo[content.F.Var] = varBinding{path: path, kind: kAtom}
			if content.F.Const != nil {
				tr.where = append(tr.where, o2.OCmp{Op: "=", L: path, R: o2.OLit{V: atomToVal(*content.F.Const)}})
			}
		case content.F != nil && content.F.Label == "" && content.F.Const != nil:
			tr.where = append(tr.where, o2.OCmp{Op: "=", L: path, R: o2.OLit{V: atomToVal(*content.F.Const)}})
		case content.F != nil && fty.Kind == o2.TColl:
			// nested collection: owners.list[ *class[...] ] or list[ *$o ]
			if err := tr.collectionFilter(path, fty, content.F); err != nil {
				return err
			}
		default:
			return fmt.Errorf("o2wrap: unsupported content filter under %q", fn.Label)
		}
	}
	return nil
}

// collectionFilter handles field.list[ *member ] content: a dependent range.
func (tr *translator) collectionFilter(path *o2.OPath, fty *o2.Type, coll *filter.FNode) error {
	if coll.Label != fty.Col.String() {
		return fmt.Errorf("o2wrap: expected %s filter, got %q", fty.Col, coll.Label)
	}
	if len(coll.Items) != 1 || !coll.Items[0].Star {
		return fmt.Errorf("o2wrap: collection members must be iterated with a star")
	}
	member := coll.Items[0].F
	v := tr.freshVar()
	tr.ranges = append(tr.ranges, o2.Range{Var: v, Path: path})
	switch {
	case member.Label == "class":
		if fty.Elem.Kind != o2.TClass {
			return fmt.Errorf("o2wrap: class filter over non-reference collection")
		}
		return tr.classFilter(v, tr.w.DB.Schema.Classes[fty.Elem.Class], member)
	case member.Label == "" && member.Var != "":
		tr.varInfo[member.Var] = varBinding{path: &o2.OPath{Root: v}, kind: kAtom}
		return nil
	default:
		return fmt.Errorf("o2wrap: unsupported collection member filter")
	}
}

// expr converts an algebra predicate to OQL, inlining parameters.
func (tr *translator) expr(e algebra.Expr) (o2.OExpr, error) {
	switch x := e.(type) {
	case algebra.Var:
		if vb, ok := tr.varInfo[x.Name]; ok {
			return vb.path, nil
		}
		if tr.params != nil {
			if c, ok := tr.params[x.Name]; ok {
				v, err := cellToVal(c)
				if err != nil {
					return nil, fmt.Errorf("o2wrap: parameter %s: %w", x.Name, err)
				}
				return o2.OLit{V: v}, nil
			}
		}
		return nil, fmt.Errorf("o2wrap: unbound variable %s in pushed predicate", x.Name)
	case algebra.Const:
		return o2.OLit{V: atomToVal(x.Atom)}, nil
	case algebra.Cmp:
		l, err := tr.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return nil, err
		}
		op := string(x.Op)
		return o2.OCmp{Op: op, L: l, R: r}, nil
	case algebra.And:
		l, err := tr.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return nil, err
		}
		return o2.OBool{Op: "and", L: l, R: r}, nil
	case algebra.Or:
		l, err := tr.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return nil, err
		}
		return o2.OBool{Op: "or", L: l, R: r}, nil
	case algebra.Not:
		r, err := tr.expr(x.E)
		if err != nil {
			return nil, err
		}
		return o2.OBool{Op: "not", R: r}, nil
	case algebra.Arith:
		l, err := tr.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R)
		if err != nil {
			return nil, err
		}
		op := string(x.Op)
		if x.Op == algebra.OpMul {
			op = "*"
		}
		return o2.OArith{Op: op, L: l, R: r}, nil
	case algebra.Call:
		// Method call on an object variable: current_price($c).
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("o2wrap: method %s expects one object argument", x.Name)
		}
		v, ok := x.Args[0].(algebra.Var)
		if !ok {
			return nil, fmt.Errorf("o2wrap: method %s must apply to a variable", x.Name)
		}
		vb, ok := tr.varInfo[v.Name]
		if !ok || vb.kind != kObject {
			return nil, fmt.Errorf("o2wrap: method %s must apply to an object variable", x.Name)
		}
		p := &o2.OPath{Root: vb.path.Root, Steps: append(append([]o2.OStep{}, vb.path.Steps...),
			o2.OStep{Name: x.Name, Method: true})}
		return p, nil
	default:
		return nil, fmt.Errorf("o2wrap: unsupported expression %T in pushed plan", e)
	}
}

func conjOQL(es []o2.OExpr) o2.OExpr {
	out := es[0]
	for _, e := range es[1:] {
		out = o2.OBool{Op: "and", L: out, R: e}
	}
	return out
}

func atomToVal(a data.Atom) o2.Val {
	switch a.Kind {
	case data.KindInt:
		return o2.Int(a.I)
	case data.KindFloat:
		return o2.Float(a.F)
	case data.KindBool:
		return o2.Bool(a.B)
	default:
		return o2.Str(a.S)
	}
}

func cellToVal(c tab.Cell) (o2.Val, error) {
	a, ok := c.AsAtom()
	if !ok {
		return o2.Nil(), fmt.Errorf("non-atomic cell cannot cross into OQL")
	}
	return atomToVal(a), nil
}

// valToCell converts an OQL result value to the cell the mediator-side Bind
// would have produced for the same variable.
func (w *Wrapper) valToCell(vb varBinding, v o2.Val) (tab.Cell, error) {
	switch vb.kind {
	case kAtom:
		switch v.Kind {
		case o2.VInt:
			return tab.AtomCell(data.Int(v.I)), nil
		case o2.VFloat:
			return tab.AtomCell(data.Float(v.F)), nil
		case o2.VBool:
			return tab.AtomCell(data.Bool(v.B)), nil
		case o2.VStr:
			return tab.AtomCell(data.String(v.S)), nil
		case o2.VOid:
			return tab.TreeCell(w.ExportObject(w.DB.Get(v.S))), nil
		default:
			return tab.TreeCell(w.ExportVal(v)), nil
		}
	case kObject:
		if v.Kind != o2.VOid {
			return tab.Null(), fmt.Errorf("o2wrap: expected an object, got %s", v)
		}
		return tab.TreeCell(w.ExportObject(w.DB.Get(v.S))), nil
	case kField:
		inner := w.ExportVal(v)
		field := data.Elem(vb.field)
		if inner.Label == "" && inner.Atom != nil {
			field.Atom = inner.Atom
		} else {
			field.Add(inner)
		}
		return tab.TreeCell(field), nil
	case kColl:
		field := data.Elem(vb.field, w.ExportVal(v))
		return tab.TreeCell(field), nil
	default:
		return tab.Null(), fmt.Errorf("o2wrap: unknown binding kind")
	}
}
