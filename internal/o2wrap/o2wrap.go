// Package o2wrap implements the generic O₂ wrapper of the paper
// (`o2-wrapper` in Figure 2): it exports an O₂ database's structural
// information as YAT patterns (Figure 3), its query capabilities as a
// capability interface (Figure 6), ships extents as XML trees, and — the
// heart of Section 4.1 — translates pushed algebraic subplans into OQL
// queries executed natively by the database.
package o2wrap

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/capability"
	"repro/internal/data"
	"repro/internal/nodetab"
	"repro/internal/o2"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// Wrapper wraps one O₂ database.
type Wrapper struct {
	DB        *o2.DB
	SourceNme string
	// LastOQL records the text of the most recently pushed OQL query
	// (observability: tests and examples print it, as the paper does).
	// Writes are serialized by lastMu so concurrent pushes do not race;
	// read it only after the pushes of interest have completed.
	LastOQL string
	lastMu  sync.Mutex
	// nodes caches the pre/post-order node tables of the extents.
	nodes nodetab.Cache
}

// setLastOQL records the most recent pushed query under its lock.
func (w *Wrapper) setLastOQL(q string) {
	w.lastMu.Lock()
	w.LastOQL = q
	w.lastMu.Unlock()
}

// New returns a wrapper over db, named after the source (e.g. "o2artifact").
func New(name string, db *o2.DB) *Wrapper {
	return &Wrapper{DB: db, SourceNme: name}
}

// Name implements algebra.Source.
func (w *Wrapper) Name() string { return w.SourceNme }

// Documents implements algebra.Source: one document per extent, plus the
// pre/post-order node table of each (PR 7: pushable XPath axes).
func (w *Wrapper) Documents() []string {
	out := w.extentDocuments()
	for _, d := range w.extentDocuments() {
		out = append(out, nodetab.Doc(d))
	}
	return out
}

// extentDocuments lists the base extent documents only.
func (w *Wrapper) extentDocuments() []string {
	var out []string
	for _, cn := range w.DB.Schema.Order {
		out = append(out, w.DB.Schema.Classes[cn].Extent)
	}
	return out
}

// ---------------------------------------------------------------------------
// Structural export (Figure 3)
// ---------------------------------------------------------------------------

// ExportModel returns the ODMG metamodel the schema conforms to.
func (w *Wrapper) ExportModel() *pattern.Model { return pattern.ODMGModel() }

// ExportSchema converts the O₂ schema into a YAT pattern model: each class
// becomes `Class := class[ classname: <type> ]`, with collections, tuples
// and references mapped onto the corresponding YAT patterns.
func (w *Wrapper) ExportSchema() *pattern.Model {
	m := pattern.NewModel(w.SourceNme)
	for _, cn := range w.DB.Schema.Order {
		c := w.DB.Schema.Classes[cn]
		body := typePattern(c.Type)
		m.Define(cn, pattern.Node("class", pattern.Node(strings.ToLower(cn), body)))
	}
	return m
}

func typePattern(t *o2.Type) *pattern.P {
	switch t.Kind {
	case o2.TInt:
		return pattern.Int()
	case o2.TFloat:
		return pattern.Float()
	case o2.TBool:
		return pattern.Bool()
	case o2.TStr:
		return pattern.Str()
	case o2.TTuple:
		kids := make([]*pattern.P, len(t.Fields))
		for i, f := range t.Fields {
			kids[i] = pattern.Node(f.Name, typePattern(f.Type))
		}
		return pattern.Node("tuple", kids...)
	case o2.TColl:
		col := pattern.ColFromString(t.Col.String())
		return pattern.Coll(col, typePattern(t.Elem))
	case o2.TClass:
		return pattern.Ref(t.Class)
	default:
		return pattern.Any()
	}
}

// ---------------------------------------------------------------------------
// Data export (Figure 1 / Figure 3 data level)
// ---------------------------------------------------------------------------

// ExportObject converts an object to its YAT tree:
// class[ classname[ <value> ] ] carrying the oid as identifier; references
// stay references.
func (w *Wrapper) ExportObject(o *o2.Object) *data.Node {
	return data.Elem("class",
		data.Elem(strings.ToLower(o.Class), w.ExportVal(o.Value)),
	).WithID(o.OID)
}

// ExportVal converts a value to its YAT tree.
func (w *Wrapper) ExportVal(v o2.Val) *data.Node {
	switch v.Kind {
	case o2.VInt:
		return &data.Node{Atom: &data.Atom{Kind: data.KindInt, I: v.I}}
	case o2.VFloat:
		return &data.Node{Atom: &data.Atom{Kind: data.KindFloat, F: v.F}}
	case o2.VBool:
		return &data.Node{Atom: &data.Atom{Kind: data.KindBool, B: v.B}}
	case o2.VStr:
		return &data.Node{Atom: &data.Atom{Kind: data.KindString, S: v.S}}
	case o2.VOid:
		return data.RefNode("ref", v.S)
	case o2.VTuple:
		n := data.Elem("tuple")
		for _, name := range v.Names {
			fv := w.ExportVal(v.Fields[name])
			field := data.Elem(name)
			if fv.Label == "" && fv.Atom != nil {
				field.Atom = fv.Atom
			} else {
				field.Add(fv)
			}
			n.Add(field)
		}
		return n
	case o2.VColl:
		n := data.Elem(v.Col.String())
		for _, e := range v.Elems {
			ev := w.ExportVal(e)
			if ev.Label == "" && ev.Atom != nil {
				ev.Label = "item"
			}
			n.Add(ev)
		}
		return n
	default:
		return data.Elem("nil")
	}
}

// Fetch implements algebra.Source: it ships a whole extent as a set tree,
// followed by the transitive closure of referenced objects (so that the
// mediator can resolve references while navigating).
func (w *Wrapper) Fetch(doc string) (data.Forest, error) {
	if nodetab.IsNodes(doc) {
		return w.nodeTable(nodetab.Base(doc))
	}
	cls := w.DB.Schema.ClassByExtent(doc)
	if cls == nil {
		return nil, fmt.Errorf("o2wrap: unknown extent %q", doc)
	}
	set := data.Elem("set")
	shipped := map[string]bool{}
	var queue []string
	for _, oid := range w.DB.Extents[doc] {
		set.Add(w.ExportObject(w.DB.Get(oid)))
		shipped[oid] = true
		queue = append(queue, oid)
	}
	forest := data.Forest{set}
	// Referenced closure.
	for len(queue) > 0 {
		oid := queue[0]
		queue = queue[1:]
		collectRefs(w.DB.Get(oid).Value, func(ref string) {
			if !shipped[ref] {
				shipped[ref] = true
				forest = append(forest, w.ExportObject(w.DB.Get(ref)))
				queue = append(queue, ref)
			}
		})
	}
	return forest, nil
}

// nodeTable returns the cached node table of an extent document.
func (w *Wrapper) nodeTable(base string) (data.Forest, error) {
	return w.nodes.Get(base, func(b string) (data.Forest, error) {
		if w.DB.Schema.ClassByExtent(b) == nil {
			return nil, fmt.Errorf("o2wrap: unknown extent %q", b)
		}
		return w.Fetch(b)
	})
}

func collectRefs(v o2.Val, fn func(string)) {
	switch v.Kind {
	case o2.VOid:
		fn(v.S)
	case o2.VTuple:
		for _, n := range v.Names {
			collectRefs(v.Fields[n], fn)
		}
	case o2.VColl:
		for _, e := range v.Elems {
			collectRefs(e, fn)
		}
	}
}

// ---------------------------------------------------------------------------
// Capability export (Figure 6)
// ---------------------------------------------------------------------------

// ExportInterface builds the operational interface of Figure 6: the O₂
// Fpatterns (Fclass, Ftype, Fextent), a bind capability per extent, the
// algebraic operations OQL evaluates, the boolean predicates, and one
// method declaration per schema method.
func (w *Wrapper) ExportInterface() *capability.Interface {
	i := capability.NewInterface(w.SourceNme)
	fm := capability.NewFModel("o2fmodel")
	fm.Define("Fclass", &capability.FT{
		Kind: pattern.KNode, Label: "class", Bind: capability.BindTree,
		Items: []capability.FTItem{{F: &capability.FT{
			Kind: pattern.KNode, AnyLabel: true,
			Bind: capability.BindNone, Inst: capability.InstGround,
			Items: []capability.FTItem{{F: &capability.FT{Kind: pattern.KRef, Name: "Ftype"}}},
		}}},
	})
	ftype := &capability.FT{Kind: pattern.KUnion}
	ftype.Alts = append(ftype.Alts,
		&capability.FT{Kind: pattern.KInt},
		&capability.FT{Kind: pattern.KBool},
		&capability.FT{Kind: pattern.KFloat},
		&capability.FT{Kind: pattern.KString},
		&capability.FT{
			Kind: pattern.KNode, Label: "tuple", Bind: capability.BindTree,
			Items: []capability.FTItem{{Star: true, Inst: capability.InstGround,
				F: &capability.FT{
					Kind: pattern.KNode, AnyLabel: true, Bind: capability.BindNone,
					Items: []capability.FTItem{{F: &capability.FT{Kind: pattern.KRef, Name: "Ftype"}}},
				}}},
		})
	for _, col := range []pattern.Col{pattern.ColSet, pattern.ColBag, pattern.ColList, pattern.ColArray} {
		ftype.Alts = append(ftype.Alts, &capability.FT{
			Kind: pattern.KNode, Label: col.String(), Col: col, Bind: capability.BindTree,
			Items: []capability.FTItem{{Star: true, Inst: capability.InstNone,
				F: &capability.FT{Kind: pattern.KRef, Name: "Ftype"}}},
		})
	}
	ftype.Alts = append(ftype.Alts, &capability.FT{Kind: pattern.KRef, Name: "Fclass"})
	fm.Define("Ftype", ftype)
	fm.Define("Fextent", &capability.FT{
		Kind: pattern.KNode, Label: "set", Col: pattern.ColSet, Bind: capability.BindTree,
		Items: []capability.FTItem{{Star: true, Inst: capability.InstNone,
			F: &capability.FT{Kind: pattern.KRef, Name: "Fclass"}}},
	})
	i.FModels = append(i.FModels, fm)
	for _, doc := range w.Documents() {
		i.Binds[doc] = capability.BindCap{FModel: "o2fmodel", FPattern: "Fextent"}
	}
	schema := w.ExportSchema()
	for _, cn := range w.DB.Schema.Order {
		i.Structures[w.DB.Schema.Classes[cn].Extent] =
			capability.StructureRef{Model: schema, Pattern: cn}
	}
	// The OQL-backed operations are scoped to the extent documents: a join
	// the database evaluates natively ranges over extents, not over the
	// synthetic node tables below (those have their own scoped entries), and
	// a single declaration never covers a mix of the two families.
	extents := w.extentDocuments()
	i.Operations = append(i.Operations,
		capability.Operation{Name: "bind", Kind: "algebra",
			Inputs: []capability.Sig{
				{Model: "o2model", Pattern: "Type"},
				{Model: "o2fmodel", Pattern: "Ftype", IsFilter: true},
			},
			Output: &capability.Sig{Model: "yat", Pattern: "Tab"}},
		capability.Operation{Name: "select", Kind: "algebra", Docs: extents},
		capability.Operation{Name: "project", Kind: "algebra", Docs: extents},
		capability.Operation{Name: "join", Kind: "algebra", Docs: extents},
		capability.Operation{Name: "djoin", Kind: "algebra", Docs: extents},
		capability.Operation{Name: "map", Kind: "algebra", Docs: extents},
		capability.Operation{Name: "eq", Kind: "boolean", Docs: extents},
		capability.Operation{Name: "neq", Kind: "boolean", Docs: extents},
		capability.Operation{Name: "lt", Kind: "boolean", Docs: extents},
		capability.Operation{Name: "leq", Kind: "boolean", Docs: extents},
		capability.Operation{Name: "gt", Kind: "boolean", Docs: extents},
		capability.Operation{Name: "geq", Kind: "boolean", Docs: extents},
	)
	// Node tables: pushable XPath-axis predicates over pre/post numbering.
	nodetab.Export(i, extents)
	for _, cn := range w.DB.Schema.Order {
		c := w.DB.Schema.Classes[cn]
		for mn, m := range c.Methods {
			leaf := "String"
			switch m.Output.Kind {
			case o2.TInt:
				leaf = "Int"
			case o2.TFloat:
				leaf = "Float"
			case o2.TBool:
				leaf = "Bool"
			}
			i.Operations = append(i.Operations, capability.Operation{
				Name: mn, Kind: "method",
				Inputs: []capability.Sig{{Model: w.SourceNme, Pattern: cn}},
				Output: &capability.Sig{Leaf: leaf},
			})
		}
	}
	return i
}

// Funcs exports the schema's methods as mediator-callable functions: when a
// method predicate cannot be pushed, the mediator evaluates it by calling
// back into the source with the object's identifier.
func (w *Wrapper) Funcs() map[string]algebra.Func {
	out := map[string]algebra.Func{}
	for _, cn := range w.DB.Schema.Order {
		for mn, m := range w.DB.Schema.Classes[cn].Methods {
			method := m
			out[mn] = func(args []tab.Cell) (tab.Cell, error) {
				if len(args) != 1 || args[0].Kind != tab.CTree || args[0].Tree.ID == "" {
					return tab.Null(), fmt.Errorf("o2wrap: method %s expects an identified object", method.Name)
				}
				obj := w.DB.Get(args[0].Tree.ID)
				if obj == nil {
					return tab.Null(), fmt.Errorf("o2wrap: unknown object %s", args[0].Tree.ID)
				}
				v, err := method.Fn(w.DB, obj)
				if err != nil {
					return tab.Null(), err
				}
				return w.valToCell(varBinding{kind: kAtom}, v)
			}
		}
	}
	return out
}
