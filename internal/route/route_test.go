// Tests live in an external package so the integration test can stand up a
// real mediator over replicated wire clients without import gymnastics.
package route_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/route"
	"repro/internal/tab"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// errReset is a transport-level failure: wire.IsRetryable reports true for
// it, so it trips replica breakers and triggers failover.
var errReset = &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset by peer")}

// fakeRep is a controllable in-process replica.
type fakeRep struct {
	name  string
	docs  []string
	delay time.Duration
	calls atomic.Int64
	fail  atomic.Pointer[error]
}

func newFakeRep(name string) *fakeRep {
	return &fakeRep{name: name, docs: []string{"doc"}}
}

func (s *fakeRep) setFail(err error) { s.fail.Store(&err) }

func (s *fakeRep) failErr() error {
	if p := s.fail.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *fakeRep) Name() string        { return s.name }
func (s *fakeRep) Documents() []string { return append([]string(nil), s.docs...) }

func (s *fakeRep) Fetch(doc string) (data.Forest, error) {
	s.calls.Add(1)
	if err := s.failErr(); err != nil {
		return nil, err
	}
	return data.Forest{}, nil
}

func (s *fakeRep) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if err := s.failErr(); err != nil {
		return nil, err
	}
	t := tab.New("who")
	t.AddRow([]tab.Cell{tab.AtomCell(data.String(s.name))})
	return t, nil
}

func mustRoute(t *testing.T, reps []algebra.Source, opts route.Options) *route.Replicated {
	t.Helper()
	r, err := route.New("src", reps, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouteRejectsMismatchedDocSets(t *testing.T) {
	a, b := newFakeRep("a"), newFakeRep("b")
	b.docs = []string{"other"}
	if _, err := route.New("src", []algebra.Source{a, b}, route.Options{}); err == nil {
		t.Fatal("replicas exporting different documents must be rejected")
	}
	if _, err := route.New("src", nil, route.Options{}); err == nil {
		t.Fatal("empty replica set must be rejected")
	}
}

// TestRouteFailoverAndEviction: a replica failing at the transport level is
// failed over transparently, and after FailureThreshold consecutive
// failures its breaker opens — subsequent calls stop touching it at all.
func TestRouteFailoverAndEviction(t *testing.T) {
	bad, good := newFakeRep("bad"), newFakeRep("good")
	bad.setFail(errReset)
	r := mustRoute(t, []algebra.Source{bad, good},
		route.Options{Breaker: route.BreakerOptions{FailureThreshold: 3, Cooldown: time.Minute}})

	for i := 0; i < 12; i++ {
		res, err := r.Push(nil, nil)
		if err != nil {
			t.Fatalf("call %d: failover did not mask the bad replica: %v", i, err)
		}
		if who, _ := res.Rows[0][0].AsAtom(); who.S != "good" {
			t.Fatalf("call %d answered by %q", i, who.S)
		}
	}

	var badHealth *route.ReplicaHealth
	for _, h := range r.Health() {
		if h.ID == 0 {
			hh := h
			badHealth = &hh
		}
	}
	if badHealth == nil || badHealth.State != "open" {
		t.Fatalf("bad replica not evicted: %+v", r.Health())
	}

	before := bad.calls.Load()
	for i := 0; i < 10; i++ {
		if _, err := r.Push(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if after := bad.calls.Load(); after != before {
		t.Fatalf("evicted replica still receives calls: %d -> %d", before, after)
	}
}

// TestRouteSemanticErrorSettles: a server-reported error is an answer, not
// an outage — it returns to the caller from the first replica tried, with
// no failover and no breaker damage.
func TestRouteSemanticErrorSettles(t *testing.T) {
	a, b := newFakeRep("a"), newFakeRep("b")
	semantic := error(&wire.RemoteError{Msg: "unknown document"})
	a.setFail(semantic)
	b.setFail(semantic)
	r := mustRoute(t, []algebra.Source{a, b}, route.Options{})

	_, err := r.Push(nil, nil)
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want the RemoteError back, got %v", err)
	}
	if total := a.calls.Load() + b.calls.Load(); total != 1 {
		t.Fatalf("semantic error must not fail over: %d attempts", total)
	}
	for _, h := range r.Health() {
		if h.State != "closed" {
			t.Fatalf("semantic error damaged breaker: %+v", h)
		}
	}
}

// TestRouteAllDownThenRecover: with every replica failing the call reports
// a transport-classified error (so the mediator's source guard degrades
// around the logical source), fails fast while breakers are open, and
// re-admits a replica through a half-open probe after the cooldown.
func TestRouteAllDownThenRecover(t *testing.T) {
	a, b := newFakeRep("a"), newFakeRep("b")
	a.setFail(errReset)
	b.setFail(errReset)
	r := mustRoute(t, []algebra.Source{a, b},
		route.Options{Breaker: route.BreakerOptions{FailureThreshold: 1, Cooldown: 50 * time.Millisecond}})

	_, err := r.Push(nil, nil)
	if err == nil {
		t.Fatal("want failure with every replica down")
	}
	if !wire.IsRetryable(err) {
		t.Fatalf("all-replicas-down error must classify as transport-level, got %v", err)
	}

	// Breakers now open: the next call is refused without touching either
	// replica, and still classifies as a transport outage.
	calls := a.calls.Load() + b.calls.Load()
	_, err = r.Push(nil, nil)
	if err == nil || !wire.IsRetryable(err) {
		t.Fatalf("fail-fast error misclassified: %v", err)
	}
	if now := a.calls.Load() + b.calls.Load(); now != calls {
		t.Fatalf("open breakers still let calls through: %d -> %d", calls, now)
	}

	// One replica recovers; the half-open probe finds it.
	a.setFail(nil)
	time.Sleep(60 * time.Millisecond)
	res, err := r.Push(nil, nil)
	if err != nil {
		t.Fatalf("probe did not re-admit recovered replica: %v", err)
	}
	if who, _ := res.Rows[0][0].AsAtom(); who.S != "a" {
		t.Fatalf("recovered call answered by %q", who.S)
	}
}

// TestRouteSpreadsLoad: concurrent calls against slow replicas land on
// both of them — least-loaded selection with rotating ties does not pin a
// single replica.
func TestRouteSpreadsLoad(t *testing.T) {
	a, b := newFakeRep("a"), newFakeRep("b")
	a.delay, b.delay = 10*time.Millisecond, 10*time.Millisecond
	r := mustRoute(t, []algebra.Source{a, b}, route.Options{})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Push(nil, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if a.calls.Load() == 0 || b.calls.Load() == 0 {
		t.Fatalf("load pinned to one replica: a=%d b=%d", a.calls.Load(), b.calls.Load())
	}
}

// trackingListener records accepted connections so the test can kill a
// wrapper process outright — listener and live connections both.
type trackingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *trackingListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// deployO2Replica serves one O₂ wrapper replica over TCP and returns its
// server plus a kill switch.
func deployO2Replica(t *testing.T, db *datagen.Workload) (*wire.Server, func()) {
	t.Helper()
	ow := o2wrap.New("o2artifact", db.DB)
	schema := ow.ExportSchema()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tl := &trackingListener{Listener: ln}
	srv := wire.Serve(tl, wire.Exported{
		Source:    ow,
		Interface: ow.ExportInterface(),
		Structures: map[string]wire.StructureRef{
			"artifacts": {Model: schema, Pattern: "Artifact"},
			"persons":   {Model: schema, Pattern: "Person"},
		},
	})
	t.Cleanup(srv.Close)
	return srv, tl.kill
}

// TestReplicaKillMidLoad is the paper-deployment failover test: a mediator
// runs Q2 continuously against an O₂ source backed by two replica wrapper
// processes; one replica is killed mid-load. Every query must keep
// answering (byte-identical to the serial baseline) and the dead replica
// must be evicted from routing while the logical source stays healthy.
func TestReplicaKillMidLoad(t *testing.T) {
	w := datagen.Generate(datagen.DefaultParams(60))

	srv0, kill0 := deployO2Replica(t, w)
	srv1, _ := deployO2Replica(t, w)

	var reps []algebra.Source
	for _, addr := range []string{srv0.Addr(), srv1.Addr()} {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		reps = append(reps, c)
	}
	rt, err := route.New("o2artifact", reps,
		route.Options{Breaker: route.BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}

	m := mediator.New()
	iface, err := reps[0].(*wire.Client).ImportInterface()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Connect(rt, iface); err != nil {
		t.Fatal(err)
	}
	sts, err := reps[0].(*wire.Client).ImportStructures()
	if err != nil {
		t.Fatal(err)
	}
	for doc, ref := range sts {
		m.ImportStructure(doc, ref.Model, ref.Pattern)
	}

	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	if err := m.Connect(ww, ww.ExportInterface()); err != nil {
		t.Fatal(err)
	}
	m.ImportStructure("works", ww.ExportStructure(), "Works")
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		t.Fatal(err)
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")

	want, err := m.ExecuteContext(context.Background(), datagen.Q2Src, mediator.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	var killOnce sync.Once
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if g == 0 && i == 2 {
					killOnce.Do(kill0)
				}
				res, err := m.ExecuteContext(context.Background(), datagen.Q2Src,
					mediator.ExecOptions{Parallelism: 2, Timeout: time.Minute})
				if err != nil {
					t.Errorf("worker %d iter %d: query failed across replica kill: %v", g, i, err)
					return
				}
				if !res.Tab.Equal(want.Tab) {
					t.Errorf("worker %d iter %d: rows diverged after replica kill", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	health := rt.Health()
	var dead, live int
	for _, h := range health {
		switch {
		case h.Addr == srv0.Addr() && h.State == "open":
			dead++
		case h.Addr == srv1.Addr() && h.State == "closed":
			live++
		}
	}
	if dead != 1 || live != 1 {
		t.Fatalf("replica census after kill: want dead=1 live=1, got %+v", health)
	}
	if sh := m.Health()["o2artifact"]; sh.State != "closed" {
		t.Fatalf("logical source must stay healthy while a replica is down: %+v", sh)
	}
}
