// Package route fans one logical source across N replica wrappers. The
// mediator connects a *Replicated exactly like a single wrapper client; the
// router below it picks the least-loaded live replica per call, evicts
// replicas whose transport keeps failing behind per-replica circuit
// breakers (closed → open → half-open re-probe, the PR 4 semantics), and
// fails a call over to the remaining replicas when the chosen one dies
// mid-request. Only transport-level failures (wire.IsRetryable) trigger
// failover: a server-reported <error> frame is proof of life and an answer
// — replaying it elsewhere could only hide a real semantic problem — and a
// caller's expired context is the caller's budget, not the replica's
// fault.
//
// The router sits *below* the mediator's per-source guard: when every
// replica is down, the returned error wraps the last transport failure so
// the guard still classifies the logical source as unavailable, trips the
// mediator-level breaker and lets AllowPartial queries degrade around it.
package route

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/tab"
	"repro/internal/wire"
)

// BreakerOptions configure the per-replica circuit breakers. They mirror
// the mediator's per-source breakers: FailureThreshold consecutive
// transport failures open a replica's breaker, Cooldown later one probe is
// let through (half-open) and its outcome closes or re-opens it.
type BreakerOptions struct {
	// FailureThreshold is the number of consecutive transport failures
	// that evicts a replica (0 = default 3).
	FailureThreshold int
	// Cooldown is how long an evicted replica sits out before a probe
	// re-tries it (0 = default 2s).
	Cooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	return o
}

// Options configure a replicated source.
type Options struct {
	Breaker BreakerOptions
}

// Breaker states, identical to the mediator's source breakers.
const (
	stClosed = iota
	stOpen
	stHalfOpen
)

// breaker is one replica's health state. Only transport failures count;
// semantic errors reset it (the replica answered, hence lives).
type breaker struct {
	opts BreakerOptions

	mu      sync.Mutex
	state   int
	fails   int
	until   time.Time // open: earliest probe time
	lastErr error     // last transport failure
}

// ready reports whether the breaker is closed (calls flow freely).
func (b *breaker) ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stClosed
}

// admit reports whether a call may proceed; an open breaker whose cooldown
// elapsed flips to half-open and admits exactly this probe.
func (b *breaker) admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stOpen:
		if time.Now().Before(b.until) {
			return false
		}
		b.state = stHalfOpen
		return true
	case stHalfOpen:
		return false
	default:
		return true
	}
}

// done records a call outcome.
func (b *breaker) done(err error, transient bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil || !transient {
		b.state = stClosed
		b.fails = 0
		b.lastErr = nil
		return
	}
	b.fails++
	b.lastErr = err
	if b.state == stHalfOpen || b.fails >= b.opts.FailureThreshold {
		b.state = stOpen
		b.until = time.Now().Add(b.opts.Cooldown)
	}
}

// lastFailure returns the transport failure the breaker last recorded.
func (b *breaker) lastFailure() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// replica is one backing wrapper process with its health and load state.
type replica struct {
	id       int
	src      algebra.Source
	br       *breaker
	inflight atomic.Int64 // calls (and open streams) currently against it
	served   atomic.Int64 // calls attempted against it, success or not
}

// Replicated is one logical source backed by N replica wrappers. It
// implements the full optional Source surface (ContextSource, BatchSource,
// StreamSource, PushStreamSource, RetryReporter) with per-replica
// fallbacks, so the mediator's capability type-asserts see the union of
// what the replicas can do.
type Replicated struct {
	name string
	docs []string
	reps []*replica
	rr   atomic.Uint64 // rotation counter breaking least-loaded ties
}

// New builds a replicated source named name over the given replicas. All
// replicas must export the same document set — they are interchangeable
// copies of one logical source, not a federation.
func New(name string, replicas []algebra.Source, opts Options) (*Replicated, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("route: source %s: no replicas", name)
	}
	bo := opts.Breaker.withDefaults()
	docs := sortedDocs(replicas[0])
	r := &Replicated{name: name, docs: docs}
	for i, src := range replicas {
		if i > 0 {
			if d := sortedDocs(src); !equalStrings(d, docs) {
				return nil, fmt.Errorf("route: source %s: replica %d exports %v, replica 0 exports %v",
					name, i, d, docs)
			}
		}
		r.reps = append(r.reps, &replica{id: i, src: src, br: &breaker{opts: bo}})
	}
	return r, nil
}

func sortedDocs(src algebra.Source) []string {
	d := append([]string(nil), src.Documents()...)
	sort.Strings(d)
	return d
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pick chooses the replica for the next attempt: the least-loaded among
// untried replicas with closed breakers; failing that, the first untried
// replica whose breaker admits a half-open probe. Ties rotate so equal
// load spreads instead of pinning replica 0.
func (r *Replicated) pick(tried []bool) *replica {
	start := int(r.rr.Add(1)) % len(r.reps)
	var best *replica
	var bestLoad int64
	for i := 0; i < len(r.reps); i++ {
		rep := r.reps[(start+i)%len(r.reps)]
		if tried[rep.id] || !rep.br.ready() {
			continue
		}
		if load := rep.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	if best != nil {
		return best
	}
	for i := 0; i < len(r.reps); i++ {
		rep := r.reps[(start+i)%len(r.reps)]
		if !tried[rep.id] && rep.br.admit() {
			return rep
		}
	}
	return nil
}

// do runs one logical call, failing over across replicas on transport
// errors. Each replica is attempted at most once per call; its breaker
// absorbs the outcome either way. Success and semantic errors settle the
// call at the replica that produced them.
func (r *Replicated) do(ctx context.Context, fn func(*replica) error) error {
	tried := make([]bool, len(r.reps))
	var lastErr error
	for n := 0; n < len(r.reps); n++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rep := r.pick(tried)
		if rep == nil {
			break
		}
		tried[rep.id] = true
		rep.served.Add(1)
		rep.inflight.Add(1)
		err := fn(rep)
		rep.inflight.Add(-1)
		tr := err != nil && wire.IsRetryable(err)
		rep.br.done(err, tr)
		if !tr {
			return err
		}
		lastErr = err
	}
	if lastErr == nil {
		// Every breaker refused (open mid-cooldown or probing): surface the
		// failure that evicted one of them so the error still classifies as
		// a transport-level outage upstream.
		for _, rep := range r.reps {
			if e := rep.br.lastFailure(); e != nil {
				lastErr = e
				break
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("no replica admitted the call")
	}
	return fmt.Errorf("route: source %s: all %d replicas unavailable: %w", r.name, len(r.reps), lastErr)
}

// Name implements algebra.Source.
func (r *Replicated) Name() string { return r.name }

// Documents implements algebra.Source.
func (r *Replicated) Documents() []string { return append([]string(nil), r.docs...) }

// Fetch implements algebra.Source.
func (r *Replicated) Fetch(doc string) (data.Forest, error) {
	return r.FetchContext(context.Background(), doc)
}

// FetchContext implements algebra.ContextSource.
func (r *Replicated) FetchContext(ctx context.Context, doc string) (data.Forest, error) {
	var f data.Forest
	err := r.do(ctx, func(rep *replica) (e error) {
		if cs, ok := rep.src.(algebra.ContextSource); ok {
			f, e = cs.FetchContext(ctx, doc)
		} else {
			f, e = rep.src.Fetch(doc)
		}
		return
	})
	return f, err
}

// Push implements algebra.Source.
func (r *Replicated) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	return r.PushContext(context.Background(), plan, params)
}

// PushContext implements algebra.ContextSource.
func (r *Replicated) PushContext(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	var t *tab.Tab
	err := r.do(ctx, func(rep *replica) (e error) {
		if cs, ok := rep.src.(algebra.ContextSource); ok {
			t, e = cs.PushContext(ctx, plan, params)
		} else {
			t, e = rep.src.Push(plan, params)
		}
		return
	})
	return t, err
}

// PushBatch implements algebra.BatchSource.
func (r *Replicated) PushBatch(plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	return r.PushBatchContext(context.Background(), plan, bindings)
}

// PushBatchContext implements algebra.BatchSource. Replicas without batch
// support evaluate per binding — all-or-error like the wire protocol's
// batched push, and still one replica per logical call so a failover
// cannot interleave half a batch from each of two replicas.
func (r *Replicated) PushBatchContext(ctx context.Context, plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	var ts []*tab.Tab
	err := r.do(ctx, func(rep *replica) (e error) {
		if bs, ok := rep.src.(algebra.BatchSource); ok {
			ts, e = bs.PushBatchContext(ctx, plan, bindings)
			return
		}
		out := make([]*tab.Tab, 0, len(bindings))
		for _, bind := range bindings {
			var t *tab.Tab
			if cs, ok := rep.src.(algebra.ContextSource); ok {
				t, e = cs.PushContext(ctx, plan, bind)
			} else {
				t, e = rep.src.Push(plan, bind)
			}
			if e != nil {
				return
			}
			out = append(out, t)
		}
		ts = out
		return
	})
	return ts, err
}

// FetchStream implements algebra.StreamSource. Failover applies to the
// stream handshake only: once rows flow, a mid-stream transport failure
// surfaces to the caller (rows already emitted cannot be replayed
// elsewhere without duplication) and is charged to the replica's breaker
// by the cursor wrapper. The replica's inflight count stays raised until
// the cursor closes, so least-loaded routing sees long streams as load.
func (r *Replicated) FetchStream(ctx context.Context, doc string) (algebra.ForestCursor, error) {
	var cur algebra.ForestCursor
	var on *replica
	err := r.do(ctx, func(rep *replica) (e error) {
		if ss, ok := rep.src.(algebra.StreamSource); ok {
			cur, e = ss.FetchStream(ctx, doc)
		} else {
			var f data.Forest
			if cs, ok := rep.src.(algebra.ContextSource); ok {
				f, e = cs.FetchContext(ctx, doc)
			} else {
				f, e = rep.src.Fetch(doc)
			}
			if e == nil {
				cur = algebra.NewSliceForestCursor(f, tab.DefaultStreamChunk)
			}
		}
		if e == nil {
			on = rep
		}
		return
	})
	if err != nil {
		return nil, err
	}
	on.inflight.Add(1)
	return &routeForestCursor{cur: cur, rep: on}, nil
}

// PushStream implements algebra.PushStreamSource with the same handshake
// failover and stream-lifetime load accounting as FetchStream.
func (r *Replicated) PushStream(ctx context.Context, plan algebra.Op, params map[string]tab.Cell) (tab.Cursor, error) {
	var cur tab.Cursor
	var on *replica
	err := r.do(ctx, func(rep *replica) (e error) {
		if ps, ok := rep.src.(algebra.PushStreamSource); ok {
			cur, e = ps.PushStream(ctx, plan, params)
		} else {
			var t *tab.Tab
			if cs, ok := rep.src.(algebra.ContextSource); ok {
				t, e = cs.PushContext(ctx, plan, params)
			} else {
				t, e = rep.src.Push(plan, params)
			}
			if e == nil {
				cur = tab.NewSliceCursor(t, tab.DefaultStreamChunk)
			}
		}
		if e == nil {
			on = rep
		}
		return
	})
	if err != nil {
		return nil, err
	}
	on.inflight.Add(1)
	return &routeTabCursor{cur: cur, rep: on}, nil
}

// routeForestCursor charges mid-stream transport failures to the serving
// replica's breaker and releases its inflight slot on Close.
type routeForestCursor struct {
	cur  algebra.ForestCursor
	rep  *replica
	once sync.Once
}

func (c *routeForestCursor) Next() (data.Forest, error) {
	f, err := c.cur.Next()
	if err != nil && !errors.Is(err, context.Canceled) && wire.IsRetryable(err) {
		c.rep.br.done(err, true)
	}
	return f, err
}

func (c *routeForestCursor) Close() error {
	c.once.Do(func() { c.rep.inflight.Add(-1) })
	return c.cur.Close()
}

// routeTabCursor is routeForestCursor for row streams.
type routeTabCursor struct {
	cur  tab.Cursor
	rep  *replica
	once sync.Once
}

func (c *routeTabCursor) Cols() []string { return c.cur.Cols() }

func (c *routeTabCursor) Next() (*tab.Tab, error) {
	t, err := c.cur.Next()
	if err != nil && !errors.Is(err, context.Canceled) && wire.IsRetryable(err) {
		c.rep.br.done(err, true)
	}
	return t, err
}

func (c *routeTabCursor) Close() error {
	c.once.Do(func() { c.rep.inflight.Add(-1) })
	return c.cur.Close()
}

// TakeRetryStats implements algebra.RetryReporter by draining every
// replica's transport counters.
func (r *Replicated) TakeRetryStats() (retries, redials int) {
	for _, rep := range r.reps {
		if rr, ok := rep.src.(algebra.RetryReporter); ok {
			re, rd := rr.TakeRetryStats()
			retries += re
			redials += rd
		}
	}
	return
}

// SourceState implements algebra.StateReporter with a replica census,
// e.g. "2/3 replicas closed".
func (r *Replicated) SourceState() string {
	up := 0
	for _, rep := range r.reps {
		if rep.br.ready() {
			up++
		}
	}
	return fmt.Sprintf("%d/%d replicas closed", up, len(r.reps))
}

// ReplicaHealth is one replica's routing state as reported by Health.
type ReplicaHealth struct {
	ID       int    // replica index within the logical source
	Addr     string // wrapper address, when the replica transport knows it
	State    string // "closed", "open" or "half-open"
	Failures int    // consecutive transport failures
	Inflight int64  // calls and open streams currently routed to it
	Served   int64  // attempts routed to it since construction
	LastErr  string // most recent transport failure, if any
}

// addrReporter is the optional transport accessor (wire.Client has it).
type addrReporter interface{ Addr() string }

// Health snapshots every replica's breaker and load state.
func (r *Replicated) Health() []ReplicaHealth {
	out := make([]ReplicaHealth, 0, len(r.reps))
	for _, rep := range r.reps {
		h := ReplicaHealth{
			ID:       rep.id,
			Inflight: rep.inflight.Load(),
			Served:   rep.served.Load(),
		}
		if ar, ok := rep.src.(addrReporter); ok {
			h.Addr = ar.Addr()
		}
		rep.br.mu.Lock()
		switch rep.br.state {
		case stOpen:
			h.State = "open"
		case stHalfOpen:
			h.State = "half-open"
		default:
			h.State = "closed"
		}
		h.Failures = rep.br.fails
		if rep.br.lastErr != nil {
			h.LastErr = rep.br.lastErr.Error()
		}
		rep.br.mu.Unlock()
		out = append(out, h)
	}
	return out
}
