package typecheck

import (
	"strings"

	"repro/internal/algebra"
)

// Render prints the plan as an indented operator tree (the Describe
// layout) with each operator's inferred row type appended:
//
//	Select($s = "Impressionist")  :: {$t: String, $s: String}
//	  DJoin  :: {$t: String, $s: String}
//	    ...
func Render(plan algebra.Op, ann *Annotation) string {
	var b strings.Builder
	renderOp(&b, plan, ann, 0)
	return b.String()
}

func renderOp(b *strings.Builder, op algebra.Op, ann *Annotation, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if op == nil {
		b.WriteString("<nil>\n")
		return
	}
	b.WriteString(op.Detail())
	if ann != nil {
		if rt, ok := ann.Types[op]; ok {
			b.WriteString("  :: ")
			b.WriteString(rt.String())
		}
	}
	b.WriteByte('\n')
	for _, c := range op.Children() {
		renderOp(b, c, ann, depth+1)
	}
}
