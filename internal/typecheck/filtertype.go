package typecheck

import (
	"repro/internal/filter"
	"repro/internal/pattern"
)

// filterTypes types the variables a filter binds when matched against data
// of the given pattern, and reports whether the filter is compatible with
// the pattern at all (false = the filter provably matches no instance, so
// the Bind is dead).
//
// The walk mirrors the matcher: a variable on a content position (the
// virtual unlabeled child exposing a leaf's atom) gets the atomic content
// type; a variable on a structural node gets the node's pattern; label
// variables are strings; collect variables bind sequences and stay
// untyped. When a filter item can align with several pattern items or
// union alternatives, the contributions are joined — the inferred type
// must cover every way the match can go.
func (in *inferrer) filterTypes(p *pattern.P, f *filter.Filter) (map[string]*pattern.P, bool) {
	w := &fwalker{model: in.model, types: map[string]*pattern.P{}}
	compatible := true
	if p == nil {
		w.assignAll(f.Root)
	} else {
		compatible = w.walk(f.Root, p)
		if !compatible {
			// Still surface every variable (as Any) so the row type keeps
			// full column coverage.
			w.assignAll(f.Root)
		}
	}
	return w.types, compatible
}

type fwalker struct {
	model *pattern.Model
	types map[string]*pattern.P
}

// assign joins a contribution into a variable's type.
func (w *fwalker) assign(v string, p *pattern.P) {
	if v == "" {
		return
	}
	cur, seen := w.types[v]
	if !seen {
		w.types[v] = p
		return
	}
	if cur == nil || p == nil {
		w.types[v] = nil // unknown absorbs
		return
	}
	w.types[v] = unionType(w.model, cur, p)
}

// assignAll marks every variable below the node as untyped (Any).
func (w *fwalker) assignAll(fn *filter.FNode) {
	if fn == nil {
		return
	}
	w.assign(fn.LabelVar, pattern.Str())
	w.assign(fn.Var, nil)
	for _, it := range fn.Items {
		w.assign(it.CollectVar, nil)
		w.assignAll(it.F)
	}
}

// fork clones the walker for a trial alignment.
func (w *fwalker) fork() *fwalker {
	c := &fwalker{model: w.model, types: make(map[string]*pattern.P, len(w.types))}
	for v, p := range w.types {
		c.types[v] = p
	}
	return c
}

// join folds a successful trial's contributions back into the walker.
func (w *fwalker) join(trial *fwalker) {
	for v, p := range trial.types {
		if cur, seen := w.types[v]; seen {
			if cur == nil || p == nil {
				w.types[v] = nil
			} else if cur != p {
				w.types[v] = unionType(w.model, cur, p)
			}
		} else {
			w.types[v] = p
		}
	}
}

// deref chases references (cycle-safe: resolve returns nil on a pure ref
// cycle, which walk treats as unknown).
func (w *fwalker) deref(p *pattern.P) *pattern.P {
	for p != nil && p.Kind == pattern.KRef {
		if w.model == nil {
			return nil
		}
		next := w.model.Lookup(p.Name)
		if next == nil || next == p {
			return nil
		}
		p = next
	}
	return p
}

// walk aligns a filter node with a pattern, accumulating variable types.
// It returns false only when the filter provably cannot match any
// instance of the pattern.
func (w *fwalker) walk(fn *filter.FNode, p *pattern.P) bool {
	if fn == nil {
		return true
	}
	p = w.deref(p)
	if p == nil || p.Kind == pattern.KAny {
		w.assignAll(fn)
		return true
	}
	switch p.Kind {
	case pattern.KUnion:
		ok := false
		for _, alt := range p.Alts {
			trial := w.fork()
			if trial.walk(fn, alt) {
				w.join(trial)
				ok = true
			}
		}
		return ok

	case pattern.KInt, pattern.KFloat, pattern.KBool, pattern.KString, pattern.KConst:
		// An atomic pattern describes an atom-carrying node of any label.
		if fn.Const != nil && pattern.Disjoint(nil, pattern.Const(*fn.Const), nil, p) {
			return false
		}
		w.assign(fn.LabelVar, pattern.Str())
		if t := w.usableType(fn.Type); t != nil {
			w.assign(fn.Var, t)
		} else {
			w.assign(fn.Var, widen(p))
		}
		// Deeper requirements against an atom: the matcher may still
		// satisfy them through the content child; claim nothing.
		for _, it := range fn.Items {
			w.assign(it.CollectVar, nil)
			w.assignAll(it.F)
		}
		return true

	case pattern.KNode:
		if fn.Label != "" && !p.AnyLabel && fn.Label != p.Label {
			// Collection wrapping: declared structures often describe one
			// member (class[...]) while the filter matches the wrapped
			// extent (set[ *class[...] ]). Align the filter's items
			// against the member pattern directly.
			if pattern.ColFromString(fn.Label) != pattern.ColNone {
				ok := true
				for _, it := range fn.Items {
					w.assign(it.CollectVar, nil)
					if it.F == nil {
						continue
					}
					// Starred items too must match at least once (the
					// matcher fails a node whose required item finds no
					// match), so any unalignable item dooms the filter.
					if !w.walk(it.F, p) {
						ok = false
					}
				}
				w.assign(fn.Var, nil)
				w.assign(fn.LabelVar, pattern.Str())
				return ok
			}
			return false
		}
		w.assign(fn.LabelVar, pattern.Str())
		if t := w.usableType(fn.Type); t != nil {
			w.assign(fn.Var, t)
		} else {
			w.assign(fn.Var, p)
		}
		if fn.Const != nil {
			// A constant leaf requirement against a structural node: the
			// node's single item must admit the constant.
			if len(p.Items) == 1 &&
				pattern.Disjoint(nil, pattern.Const(*fn.Const), w.model, p.Items[0].P) {
				return false
			}
			return true
		}
		ok := true
		for _, it := range fn.Items {
			w.assign(it.CollectVar, nil)
			if it.F == nil {
				continue
			}
			if it.Descend {
				// ** searches arbitrary depth; type its variables Any.
				w.assignAll(it.F)
				continue
			}
			// Starred items too must match at least once (the matcher
			// fails a node whose required item finds no match), so any
			// unalignable item dooms the filter.
			if !w.alignItem(it.F, p) {
				ok = false
			}
		}
		return ok
	default:
		w.assignAll(fn)
		return true
	}
}

// usableType accepts a declared @T filter type as the variable's inferred
// type only when its references resolve under the merged model — a @T
// whose names live solely in the filter's own model would not resolve
// where the annotation is consumed.
func (w *fwalker) usableType(t *pattern.P) *pattern.P {
	if t == nil || !refsResolve(w.model, t, map[*pattern.P]bool{}) {
		return nil
	}
	return t
}

func refsResolve(m *pattern.Model, p *pattern.P, seen map[*pattern.P]bool) bool {
	if p == nil || seen[p] {
		return true
	}
	seen[p] = true
	if p.Kind == pattern.KRef {
		if m == nil || m.Lookup(p.Name) == nil {
			return false
		}
		return true
	}
	for _, it := range p.Items {
		if !refsResolve(m, it.P, seen) {
			return false
		}
	}
	for _, alt := range p.Alts {
		if !refsResolve(m, alt, seen) {
			return false
		}
	}
	return true
}

// alignItem aligns one filter child against every pattern item that can
// host it, joining the contributions of each viable alignment.
func (w *fwalker) alignItem(fn *filter.FNode, p *pattern.P) bool {
	ok := false
	for _, pi := range p.Items {
		trial := w.fork()
		if trial.walk(fn, pi.P) {
			w.join(trial)
			ok = true
		}
	}
	if !ok {
		// No item can host the child; still record its variables so the
		// row keeps full column coverage.
		w.assignAll(fn)
	}
	return ok
}
