// Package typecheck implements schema-aware plan typing: a bottom-up type
// inference pass that assigns every algebra operator an inferred output
// pattern per column, seeded from the structural schemas the sources
// export in their capability descriptions (Section 2's instantiation
// order: the inferred pattern of an operator is a schema any produced data
// must instantiate).
//
// The inferred types feed three consumers:
//   - the optimizer's typed rewrite verification (every rewrite must keep
//     the plan's root type subsumed by the original's),
//   - planlint's static emptiness analysis (type-empty / dead-branch
//     diagnostics over provably dead operators),
//   - the mediator's wire conformance mode (ExecOptions.CheckTypes), which
//     validates shipped wrapper rows against the inferred types.
//
// Inference is conservative: a column whose type cannot be derived is
// typed Any (every cell conforms), and RowType.Empty is set only when the
// operator provably produces no rows. Constant patterns are widened to
// their atomic kinds so that rewrites which replace a constructed constant
// by the source column it came from (composition elimination) remain
// type-preserving.
package typecheck

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/pattern"
)

// Structure pairs a structural model with the name of the pattern (within
// that model) governing a document. It mirrors optimizer.Structure and
// planlint.Structure, redeclared here so those packages can depend on
// typecheck without a cycle.
type Structure struct {
	Model   *pattern.Model
	Pattern string
}

// Config seeds inference with the declared document schemas and the types
// of externally supplied parameters.
type Config struct {
	// Structures maps a document name to its declared structural schema.
	Structures map[string]Structure
	// Params types externally supplied parameters (Context.Params);
	// untyped parameters default to Any.
	Params map[string]*pattern.P
}

// RowType is the inferred output type of one operator: one pattern per
// column, in the operator's column order.
type RowType struct {
	Cols  []string
	Types map[string]*pattern.P
	// Empty marks an operator that provably produces no rows (its filter
	// cannot match the declared schema, a Union of two empty branches, an
	// empty literal, ...). Every per-column claim is then vacuous.
	Empty bool
}

// Type returns the inferred pattern of a column (nil if unknown).
func (rt *RowType) Type(col string) *pattern.P {
	if rt == nil {
		return nil
	}
	return rt.Types[col]
}

// String renders the row type as "{$a: String, $b: Int}" (column order),
// with an "empty " prefix for provably-dead operators.
func (rt *RowType) String() string {
	if rt == nil {
		return "{}"
	}
	var b strings.Builder
	if rt.Empty {
		b.WriteString("empty ")
	}
	b.WriteByte('{')
	for i, c := range rt.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c)
		b.WriteString(": ")
		if p := rt.Types[c]; p != nil {
			b.WriteString(p.String())
		} else {
			b.WriteString("Any")
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Annotation is the result of inference: a row type for every operator in
// the plan, plus the model under which the inferred patterns' references
// resolve.
type Annotation struct {
	Types map[algebra.Op]*RowType
	Root  *RowType
	Model *pattern.Model
}

// Infer runs bottom-up type inference over the plan. It errors only on
// malformed plans (nil operators); everything else degrades to Any.
func Infer(plan algebra.Op, cfg *Config) (*Annotation, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	in := &inferrer{
		cfg:   cfg,
		model: mergedModel(cfg.Structures),
		ann:   &Annotation{Types: map[algebra.Op]*RowType{}},
	}
	in.ann.Model = in.model
	env := map[string]*pattern.P{}
	for v, p := range cfg.Params {
		env[v] = p
	}
	rt, err := in.infer(plan, env)
	if err != nil {
		return nil, err
	}
	in.ann.Root = rt
	return in.ann, nil
}

// mergedModel folds every structure's definitions into one model so that
// references inside inferred patterns resolve regardless of which source
// they came from (the same merge the mediator performs for Context.Model).
func mergedModel(structures map[string]Structure) *pattern.Model {
	merged := pattern.NewModel("typecheck")
	docs := make([]string, 0, len(structures))
	for d := range structures {
		docs = append(docs, d)
	}
	sort.Strings(docs)
	for _, d := range docs {
		st := structures[d]
		if st.Model == nil {
			continue
		}
		for _, name := range st.Model.Names() {
			merged.Define(name, st.Model.Defs[name])
		}
	}
	return merged
}

type inferrer struct {
	cfg   *Config
	model *pattern.Model
	ann   *Annotation
}

// docPattern returns the declared pattern of a document, nil if unknown.
func (in *inferrer) docPattern(doc string) *pattern.P {
	st, ok := in.cfg.Structures[doc]
	if !ok || st.Model == nil || st.Model.Lookup(st.Pattern) == nil {
		return nil
	}
	return pattern.Ref(st.Pattern)
}

func (in *inferrer) infer(op algebra.Op, env map[string]*pattern.P) (*RowType, error) {
	if op == nil {
		return nil, fmt.Errorf("typecheck: nil operator")
	}
	rt, err := in.inferOp(op, env)
	if err != nil {
		return nil, err
	}
	in.ann.Types[op] = rt
	return rt, nil
}

// yat-lint:ignore intentionally partial: unknown operators degrade to Any via the default case
func (in *inferrer) inferOp(op algebra.Op, env map[string]*pattern.P) (*RowType, error) {
	switch x := op.(type) {
	case *algebra.Doc:
		rt := newRowType(x.Columns())
		rt.Types[rt.Cols[0]] = in.docPattern(x.Name)
		return rt, nil

	case *algebra.Bind:
		var inRT *RowType
		var bound *pattern.P
		switch {
		case x.Doc != "":
			bound = in.docPattern(x.Doc)
		case x.From != nil:
			var err error
			inRT, err = in.infer(x.From, env)
			if err != nil {
				return nil, err
			}
			bound = inRT.Type(x.Col)
		default:
			// Parameter bind inside a DJoin inner plan: the column's type
			// comes from the outer plan via env.
			bound = env[x.Col]
		}
		rt := newRowType(x.Columns())
		if inRT != nil {
			rt.copyFrom(inRT)
			rt.Empty = inRT.Empty
		}
		if x.F != nil {
			vars, compatible := in.filterTypes(bound, x.F)
			for v, p := range vars {
				rt.Types[v] = p
			}
			if !compatible {
				rt.Empty = true
			}
		}
		return rt, nil

	case *algebra.Select:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(inRT)
		rt.Empty = inRT.Empty
		return rt, nil

	case *algebra.Project:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.Empty = inRT.Empty
		for _, c := range x.Cols {
			if eq := strings.IndexByte(c, '='); eq >= 0 {
				rt.Types[c[:eq]] = inRT.Type(c[eq+1:])
			} else {
				rt.Types[c] = inRT.Type(c)
			}
		}
		return rt, nil

	case *algebra.MapExpr:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(inRT)
		rt.Empty = inRT.Empty
		rt.Types[x.Col] = exprType(x.E, inRT)
		return rt, nil

	case *algebra.Join:
		l, err := in.infer(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.infer(x.R, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(l)
		rt.copyFrom(r)
		rt.Empty = l.Empty || r.Empty
		return rt, nil

	case *algebra.DJoin:
		l, err := in.infer(x.L, env)
		if err != nil {
			return nil, err
		}
		// The inner plan sees the outer columns as parameters.
		renv := make(map[string]*pattern.P, len(env)+len(l.Cols))
		for v, p := range env {
			renv[v] = p
		}
		for _, c := range l.Cols {
			renv[c] = l.Type(c)
		}
		r, err := in.infer(x.R, renv)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(l)
		rt.copyFrom(r)
		rt.Empty = l.Empty || r.Empty
		return rt, nil

	case *algebra.Union:
		l, err := in.infer(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.infer(x.R, env)
		if err != nil {
			return nil, err
		}
		// Union appends rows positionally under the left columns.
		rt := newRowType(x.Columns())
		for i, c := range rt.Cols {
			lp := l.Type(c)
			var rp *pattern.P
			if i < len(r.Cols) {
				rp = r.Type(r.Cols[i])
			}
			switch {
			case l.Empty:
				rt.Types[c] = rp
			case r.Empty:
				rt.Types[c] = lp
			case lp == nil || rp == nil:
				rt.Types[c] = nil
			default:
				rt.Types[c] = unionType(in.model, lp, rp)
			}
		}
		rt.Empty = l.Empty && r.Empty
		return rt, nil

	case *algebra.Intersect:
		l, err := in.infer(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.infer(x.R, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(l)
		rt.Empty = l.Empty || r.Empty
		return rt, nil

	case *algebra.Distinct:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(inRT)
		rt.Empty = inRT.Empty
		return rt, nil

	case *algebra.Sort:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(inRT)
		rt.Empty = inRT.Empty
		return rt, nil

	case *algebra.Group:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(inRT)
		rt.Types[x.Into] = nil // nested table: untyped
		rt.Empty = inRT.Empty
		return rt, nil

	case *algebra.TreeOp:
		inRT, err := in.infer(x.From, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.Types[rt.Cols[0]] = in.consType(x.C, inRT)
		rt.Empty = inRT.Empty
		return rt, nil

	case *algebra.SourceQuery:
		inner, err := in.infer(x.Plan, env)
		if err != nil {
			return nil, err
		}
		rt := newRowType(x.Columns())
		rt.copyFrom(inner)
		rt.Empty = inner.Empty
		return rt, nil

	case *algebra.Literal:
		rt := newRowType(x.Columns())
		if x.T != nil && len(x.T.Rows) == 0 {
			rt.Empty = true
		}
		return rt, nil

	default:
		// Unknown operator: recurse for annotation coverage, type Any.
		for _, c := range op.Children() {
			if _, err := in.infer(c, env); err != nil {
				return nil, err
			}
		}
		return newRowType(op.Columns()), nil
	}
}

func newRowType(cols []string) *RowType {
	return &RowType{Cols: cols, Types: make(map[string]*pattern.P, len(cols))}
}

// copyFrom copies the other row type's column types for the columns this
// row type declares.
func (rt *RowType) copyFrom(other *RowType) {
	for _, c := range rt.Cols {
		if p := other.Type(c); p != nil {
			rt.Types[c] = p
		}
	}
}

// unionType joins two column types, collapsing subsumed alternatives so
// that unioning a type with itself is the identity.
func unionType(m *pattern.Model, a, b *pattern.P) *pattern.P {
	if a == b {
		return a
	}
	if pattern.Subsumes(m, a, m, b) {
		return a
	}
	if pattern.Subsumes(m, b, m, a) {
		return b
	}
	return pattern.Union(a, b)
}

// exprType types a scalar expression over the input row type.
// yat-lint:ignore intentionally partial: unknown expressions degrade to Any via the default case
func exprType(e algebra.Expr, in *RowType) *pattern.P {
	switch x := e.(type) {
	case algebra.Var:
		return in.Type(x.Name)
	case algebra.Const:
		return widenAtomKind(x.Atom.Kind)
	case algebra.Cmp, algebra.And, algebra.Or, algebra.Not:
		return pattern.Bool()
	case algebra.Arith:
		// Int <: Float, so Float covers both integer and mixed arithmetic.
		return pattern.Float()
	default:
		return nil
	}
}

// widenAtomKind maps an atom kind to its atomic pattern (constants are
// deliberately widened: see the package comment).
func widenAtomKind(k data.AtomKind) *pattern.P {
	switch k {
	case data.KindInt:
		return pattern.Int()
	case data.KindFloat:
		return pattern.Float()
	case data.KindBool:
		return pattern.Bool()
	case data.KindString:
		return pattern.Str()
	default:
		return nil
	}
}

// widen replaces constant patterns by their atomic kind; other patterns
// pass through.
func widen(p *pattern.P) *pattern.P {
	if p != nil && p.Kind == pattern.KConst && p.Const != nil {
		if w := widenAtomKind(p.Const.Kind); w != nil {
			return w
		}
	}
	return p
}

// consType derives the pattern of the tree a construction builds from rows
// typed by the input row type.
func (in *inferrer) consType(c *algebra.Cons, inRT *RowType) *pattern.P {
	if c == nil {
		return nil
	}
	// Pure variable splice: the constructed value is the variable's value.
	if c.Label == "" && c.LabelVar == "" && c.Var != "" && c.Const == nil && len(c.Kids) == 0 {
		return widen(inRT.Type(c.Var))
	}
	p := &pattern.P{Kind: pattern.KNode, Label: c.Label}
	if c.Label == "" {
		p.AnyLabel = true // label from a variable (~$l) or unnamed
	}
	if c.RefTo != "" {
		// A constructed reference node: its target's structure is checked
		// where the target is defined, so any child shape is admissible.
		p.Items = []pattern.Item{pattern.Starred(pattern.Any())}
		return p
	}
	switch {
	case c.Const != nil:
		if w := widenAtomKind(c.Const.Kind); w != nil {
			p.Items = []pattern.Item{pattern.One(w)}
		} else {
			p.Items = []pattern.Item{pattern.Starred(pattern.Any())}
		}
	case c.Var != "" && len(c.Kids) == 0:
		// label[ $v ]: content spliced from the variable. An untyped
		// variable may splice a whole sequence, so fall back to *Any.
		if vp := widen(inRT.Type(c.Var)); vp != nil {
			p.Items = []pattern.Item{pattern.One(vp)}
		} else {
			p.Items = []pattern.Item{pattern.Starred(pattern.Any())}
		}
	case c.Var != "":
		// Spliced content mixed with explicit children: child order is
		// construction-dependent, so claim nothing about the content.
		p.Items = []pattern.Item{pattern.Starred(pattern.Any())}
	default:
		for _, kid := range c.Kids {
			kp := in.consType(kid.C, inRT)
			if kp == nil {
				kp = pattern.Any()
			}
			// A starred child repeats per row group; an unstarred child
			// whose pattern is unknown (Any) may splice a sequence, so
			// only typed unstarred children keep exact arity.
			star := kid.Star || kp.Kind == pattern.KAny
			p.Items = append(p.Items, pattern.Item{P: kp, Star: star})
		}
	}
	return p
}
