package typecheck

import (
	"repro/internal/data"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// CellConforms reports whether a table cell instantiates the inferred
// pattern. It is the wire-conformance predicate: atoms and trees are
// checked with MatchData; nulls (absent optional bindings), sequences and
// nested tables — whose inferred types are deliberately Any — always
// conform.
func CellConforms(m *pattern.Model, p *pattern.P, c tab.Cell) bool {
	if p == nil || p.Kind == pattern.KAny {
		return true
	}
	switch c.Kind {
	case tab.CAtom:
		a := c.Atom
		return pattern.MatchData(m, p, &data.Node{Atom: &a})
	case tab.CTree:
		return pattern.MatchData(m, p, c.Tree)
	default:
		return true
	}
}
