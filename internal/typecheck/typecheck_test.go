package typecheck

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/tab"
)

// testConfig declares two documents: "docs" (doc[ *item[ name, num ] ])
// and "works" (the paper's Artworks structure, wrapped extent style).
func testConfig() *Config {
	docsModel := pattern.MustParseModel(`model docs
Doc := doc[ *&Item ]
Item := item[ name: String, num: Int ]`)
	worksModel := pattern.MustParseModel(`model Artworks_Structure
Works := works[ *&Work ]
Work  := work[ artist: String, title: String, style: String ]`)
	// "classes" mimics the O2 export: the declared pattern describes one
	// extent member while filters match the set-wrapped extent.
	classModel := pattern.MustParseModel(`model o2
Artifact := class[ artifact: tuple[ title: String, year: Int, price: Int ] ]`)
	return &Config{Structures: map[string]Structure{
		"docs":      {Model: docsModel, Pattern: "Doc"},
		"works":     {Model: worksModel, Pattern: "Works"},
		"artifacts": {Model: classModel, Pattern: "Artifact"},
	}}
}

func wantType(t *testing.T, rt *RowType, col, want string) {
	t.Helper()
	p := rt.Type(col)
	if p == nil {
		if want != "Any" {
			t.Errorf("%s: type = Any, want %s", col, want)
		}
		return
	}
	if p.String() != want {
		t.Errorf("%s: type = %s, want %s", col, p, want)
	}
}

func TestInferBindDoc(t *testing.T) {
	plan := &algebra.Bind{Doc: "docs",
		F: filter.MustParse(`doc[ *item[ name: $n, num: $v ] ]`)}
	ann, err := Infer(plan, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ann.Root.Empty {
		t.Fatalf("root unexpectedly empty: %s", ann.Root)
	}
	wantType(t, ann.Root, "$n", "String")
	wantType(t, ann.Root, "$v", "Int")
}

func TestInferBindExtentWrapped(t *testing.T) {
	// The declared pattern describes one class member; the filter matches
	// the set-wrapped extent (the O2 export convention).
	plan := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class[ artifact[ tuple[ title: $t, year: $y ] ] ] ]`)}
	ann, err := Infer(plan, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ann.Root.Empty {
		t.Fatalf("root unexpectedly empty: %s", ann.Root)
	}
	wantType(t, ann.Root, "$t", "String")
	wantType(t, ann.Root, "$y", "Int")
}

func TestInferIncompatibleFilterIsEmpty(t *testing.T) {
	plan := &algebra.Bind{Doc: "docs",
		F: filter.MustParse(`doc[ *work[ artist: $a ] ]`)}
	ann, err := Infer(plan, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ann.Root.Empty {
		t.Fatalf("filter over wrong labels should infer empty, got %s", ann.Root)
	}
	// Variables are still surfaced for column coverage.
	if _, ok := ann.Root.Types["$a"]; !ok {
		t.Fatal("incompatible filter must still surface its variables")
	}
}

// TestInferAllOperators runs inference over a plan exercising every
// algebra operator and checks the propagated types. (yat-lint's
// typecheck-coverage analyzer requires every Op constructor to appear in
// this package's tests.)
func TestInferAllOperators(t *testing.T) {
	cfg := testConfig()

	worksBind := &algebra.Bind{Doc: "works",
		F: filter.MustParse(`works[ *work[ artist: $a, title: $t, style: $s ] ]`)}
	sel := &algebra.Select{From: worksBind, Pred: algebra.MustParseExpr(`$s = "x"`)}
	proj := &algebra.Project{From: sel, Cols: []string{"$artist=$a", "$t"}}
	mapped := &algebra.MapExpr{From: proj, Col: "$flag", E: algebra.MustParseExpr(`$t = "y"`)}

	artBind := &algebra.Bind{Doc: "artifacts",
		F: filter.MustParse(`set[ *class[ artifact[ tuple[ title: $t2, price: $p ] ] ] ]`)}
	join := &algebra.Join{L: mapped, R: artBind,
		Pred: algebra.MustParseExpr(`$t = $t2`)}

	sorted := &algebra.Sort{From: join, Cols: []string{"$t"}}
	dist := &algebra.Distinct{From: sorted}
	grp := &algebra.Group{From: dist, Keys: []string{"$artist", "$p"}, Into: "$rows"}

	ann, err := Infer(grp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := ann.Root
	wantType(t, rt, "$artist", "String")
	wantType(t, rt, "$p", "Int")
	wantType(t, rt, "$rows", "Any")
	wantType(t, ann.Types[mapped], "$flag", "Bool")
	wantType(t, ann.Types[join], "$t2", "String")

	// DJoin: the inner plan sees outer columns as parameters.
	inner := &algebra.SourceQuery{Source: "src", Plan: &algebra.Bind{
		Col: "$doc2", F: filter.MustParse(`work[ artist: $a2 ]`)}}
	doc := &algebra.Doc{Name: "works", Col: "$doc2"}
	dj := &algebra.DJoin{L: doc, R: inner}
	ann2, err := Infer(dj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantType(t, ann2.Root, "$doc2", "&Works")
	// $doc2 is typed works[ *&Work ]; the inner filter binds one work's
	// artist... the works root does not match `work[...]`, so the inner
	// bind is dead — but through a union alternative it would not be. The
	// interesting claim: the filter aligned against &Works is incompatible.
	if !ann2.Root.Empty {
		t.Fatalf("inner filter over works root should be empty, got %s", ann2.Root)
	}

	// A compatible inner parameter bind.
	inner2 := &algebra.SourceQuery{Source: "src", Plan: &algebra.Bind{
		Col: "$w", F: filter.MustParse(`work[ artist: $a2 ]`)}}
	outer := &algebra.Bind{Doc: "works", F: filter.MustParse(`works[ *work@$w ]`)}
	dj2 := &algebra.DJoin{L: outer, R: inner2}
	ann3, err := Infer(dj2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ann3.Root.Empty {
		t.Fatalf("compatible DJoin unexpectedly empty: %s", ann3.Root)
	}
	wantType(t, ann3.Root, "$a2", "String")

	// Union joins column types positionally; Intersect keeps the left's.
	lit := &algebra.Literal{T: tab.New("$a2")}
	un := &algebra.Union{L: dj2, R: dj2}
	ann4, err := Infer(un, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantType(t, ann4.Root, "$a2", "String")

	inter := &algebra.Intersect{L: dj2, R: dj2}
	ann5, err := Infer(inter, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantType(t, ann5.Root, "$a2", "String")

	// An empty literal is provably dead; unioning it keeps the other
	// branch's type.
	annLit, err := Infer(lit, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !annLit.Root.Empty {
		t.Fatal("empty literal should infer empty")
	}
	unDead := &algebra.Union{L: lit, R: lit}
	annDead, err := Infer(unDead, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !annDead.Root.Empty {
		t.Fatal("union of two empty branches should be empty")
	}
}

func TestInferTreeOpComposition(t *testing.T) {
	cfg := testConfig()
	bind := &algebra.Bind{Doc: "works",
		F: filter.MustParse(`works[ *work[ artist: $a, title: $t ] ]`)}
	cons := algebra.MustParseCons(`entry[ by: $a, what: $t ]`)
	tree := &algebra.TreeOp{From: bind, C: cons, OutCol: "$e"}
	ann, err := Infer(tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := ann.Root.Type("$e")
	if got == nil {
		t.Fatal("constructed column untyped")
	}
	want := "entry[ by: String, what: String ]"
	if got.String() != want {
		t.Fatalf("cons type = %s, want %s", got, want)
	}

	// Composition: binding over the constructed column re-derives the
	// same content types.
	reread := &algebra.Bind{From: tree, Col: "$e",
		F: filter.MustParse(`entry[ by: $b ]`)}
	ann2, err := Infer(reread, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantType(t, ann2.Root, "$b", "String")
	if ann2.Root.Empty {
		t.Fatalf("composition unexpectedly empty: %s", ann2.Root)
	}
}

func TestCellConforms(t *testing.T) {
	m := pattern.NewModel("m")
	str := pattern.Str()
	workP := pattern.MustParse(`work[ artist: String ]`)
	cases := []struct {
		p    *pattern.P
		c    tab.Cell
		want bool
	}{
		{str, tab.AtomCell(data.String("x")), true},
		{str, tab.AtomCell(data.Int(3)), false},
		{pattern.Float(), tab.AtomCell(data.Int(3)), true}, // Int <: Float
		{nil, tab.AtomCell(data.Int(3)), true},
		{pattern.Any(), tab.AtomCell(data.Int(3)), true},
		{str, tab.Null(), true},
		{workP, tab.TreeCell(data.Elem("work", data.Text("artist", "p"))), true},
		{workP, tab.TreeCell(data.Elem("work", data.IntLeaf("artist", 5))), false},
		{workP, tab.TreeCell(data.Elem("other")), false},
		// Labeled leaf against an atomic content type (wrappers ship some
		// bound variables as leaf trees rather than bare atoms).
		{str, tab.TreeCell(data.Text("title", "x")), true},
	}
	for i, c := range cases {
		if got := CellConforms(m, c.p, c.c); got != c.want {
			t.Errorf("#%d: CellConforms(%v, %v) = %v, want %v", i, c.p, c.c, got, c.want)
		}
	}
}

func TestRender(t *testing.T) {
	plan := &algebra.Select{
		From: &algebra.Bind{Doc: "docs",
			F: filter.MustParse(`doc[ *item[ num: $v ] ]`)},
		Pred: algebra.MustParseExpr(`$v > 1`),
	}
	ann, err := Infer(plan, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Render(plan, ann)
	for _, want := range []string{":: {$v: Int}", "Select", "Bind(docs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("Render should mirror Describe's indentation:\n%s", out)
	}
}
