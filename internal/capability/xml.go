package capability

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/pattern"
	"repro/internal/xmlenc"
)

// XML serialization in the Figure 6 dialect:
//
//	<interface name="o2artifact">
//	  <fmodel name="o2fmodel">
//	    <fpattern name="Fclass">
//	      <node label="class" bind="tree">
//	        <node label="Symbol" bind="none" inst="ground">
//	          <ref pattern="Ftype"/></node></node>
//	    </fpattern>
//	  </fmodel>
//	  <bindcap doc="artifacts" fmodel="o2fmodel" fpattern="Fextent"/>
//	  <operation name="bind" kind="algebra">
//	    <input><value model="o2model" pattern="Type"/>
//	           <filter model="o2fmodel" pattern="Ftype"/></input>
//	    <output><value model="yat" pattern="Tab"/></output>
//	  </operation>
//	  <equivalence name="contains-eq" from="eq" to="contains" scope="Fwork"/>
//	</interface>
//
// Fpattern elements: <node>, <leaf label="Int"/>, <star inst=...>, <union>,
// <ref pattern=...>, <any/>.

// FTToXML serializes an Fpattern node.
func FTToXML(f *FT) *data.Node {
	switch f.Kind {
	case pattern.KAny:
		return data.Elem("any")
	case pattern.KInt:
		return leafXML("Int")
	case pattern.KFloat:
		return leafXML("Float")
	case pattern.KBool:
		return leafXML("Bool")
	case pattern.KString:
		return leafXML("String")
	case pattern.KRef:
		n := data.Elem("ref")
		n.Add(data.Text("@pattern", f.Name))
		if f.Bind != BindAny {
			n.Add(data.Text("@bind", f.Bind.String()))
		}
		return n
	case pattern.KUnion:
		n := data.Elem("union")
		for _, a := range f.Alts {
			n.Add(FTToXML(a))
		}
		return n
	case pattern.KNode:
		n := data.Elem("node")
		label := f.Label
		if f.AnyLabel {
			label = "Symbol"
		}
		n.Add(data.Text("@label", label))
		if f.Col != pattern.ColNone {
			n.Add(data.Text("@col", f.Col.String()))
		}
		if f.Bind != BindAny {
			n.Add(data.Text("@bind", f.Bind.String()))
		}
		if f.Inst != InstAny {
			n.Add(data.Text("@inst", f.Inst.String()))
		}
		for _, it := range f.Items {
			kid := FTToXML(it.F)
			if it.Star {
				star := data.Elem("star", kid)
				if it.Inst != InstAny {
					star.Kids = append([]*data.Node{data.Text("@inst", it.Inst.String())}, star.Kids...)
				}
				kid = star
			}
			n.Add(kid)
		}
		return n
	default:
		return data.Elem("any")
	}
}

func leafXML(label string) *data.Node {
	n := data.Elem("leaf")
	n.Add(data.Text("@label", label))
	return n
}

// FTFromXML parses an Fpattern node.
func FTFromXML(n *data.Node) (*FT, error) {
	if n == nil {
		return nil, fmt.Errorf("capability: nil fpattern element")
	}
	switch n.Label {
	case "any":
		return &FT{Kind: pattern.KAny}, nil
	case "leaf":
		switch attr(n, "label") {
		case "Int":
			return &FT{Kind: pattern.KInt}, nil
		case "Float":
			return &FT{Kind: pattern.KFloat}, nil
		case "Bool":
			return &FT{Kind: pattern.KBool}, nil
		case "String":
			return &FT{Kind: pattern.KString}, nil
		default:
			return nil, fmt.Errorf("capability: unknown leaf label %q", attr(n, "label"))
		}
	case "ref", "value":
		name := attr(n, "pattern")
		if name == "" {
			return nil, fmt.Errorf("capability: <%s> without pattern attribute", n.Label)
		}
		return &FT{Kind: pattern.KRef, Name: name, Bind: BindFlagFromString(attr(n, "bind"))}, nil
	case "union":
		u := &FT{Kind: pattern.KUnion}
		for _, k := range n.Kids {
			if isAttr(k) {
				continue
			}
			a, err := FTFromXML(k)
			if err != nil {
				return nil, err
			}
			u.Alts = append(u.Alts, a)
		}
		return u, nil
	case "node":
		f := &FT{
			Kind:  pattern.KNode,
			Label: attr(n, "label"),
			Col:   pattern.ColFromString(attr(n, "col")),
			Bind:  BindFlagFromString(attr(n, "bind")),
			Inst:  InstFlagFromString(attr(n, "inst")),
		}
		if f.Label == "Symbol" {
			f.Label, f.AnyLabel = "", true
		}
		for _, k := range n.Kids {
			if isAttr(k) {
				continue
			}
			it := FTItem{}
			src := k
			if k.Label == "star" {
				it.Star = true
				it.Inst = InstFlagFromString(attr(k, "inst"))
				src = firstElem(k)
				if src == nil {
					return nil, fmt.Errorf("capability: empty <star>")
				}
			}
			sub, err := FTFromXML(src)
			if err != nil {
				return nil, err
			}
			it.F = sub
			f.Items = append(f.Items, it)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("capability: unknown fpattern element <%s>", n.Label)
	}
}

// ToXML serializes the full interface.
func ToXML(i *Interface) *data.Node {
	root := data.Elem("interface")
	root.Add(data.Text("@name", i.Name))
	for _, m := range i.FModels {
		me := data.Elem("fmodel")
		me.Add(data.Text("@name", m.Name))
		for _, name := range m.Order {
			pe := data.Elem("fpattern")
			pe.Add(data.Text("@name", name))
			pe.Add(FTToXML(m.Defs[name]))
			me.Add(pe)
		}
		root.Add(me)
	}
	// Deterministic order for bind capabilities.
	var docs []string
	for d := range i.Binds {
		docs = append(docs, d)
	}
	sortStrings(docs)
	for _, d := range docs {
		bc := i.Binds[d]
		be := data.Elem("bindcap")
		be.Add(data.Text("@doc", d))
		be.Add(data.Text("@fmodel", bc.FModel))
		be.Add(data.Text("@fpattern", bc.FPattern))
		root.Add(be)
	}
	// Structural schemas ride along as their textual model form.
	var sdocs []string
	for d := range i.Structures {
		sdocs = append(sdocs, d)
	}
	sortStrings(sdocs)
	for _, d := range sdocs {
		ref := i.Structures[d]
		if ref.Model == nil {
			continue
		}
		se := data.Elem("structure")
		se.Add(data.Text("@doc", d))
		se.Add(data.Text("@pattern", ref.Pattern))
		se.Add(data.Text("model", ref.Model.String()))
		root.Add(se)
	}
	for _, op := range i.Operations {
		oe := data.Elem("operation")
		oe.Add(data.Text("@name", op.Name))
		oe.Add(data.Text("@kind", op.Kind))
		if len(op.Docs) > 0 {
			oe.Add(data.Text("@docs", strings.Join(op.Docs, " ")))
		}
		if len(op.Inputs) > 0 {
			in := data.Elem("input")
			for _, s := range op.Inputs {
				in.Add(sigToXML(s))
			}
			oe.Add(in)
		}
		if op.Output != nil {
			oe.Add(data.Elem("output", sigToXML(*op.Output)))
		}
		root.Add(oe)
	}
	for _, eq := range i.Equivalences {
		ee := data.Elem("equivalence")
		ee.Add(data.Text("@name", eq.Name))
		ee.Add(data.Text("@from", eq.From))
		ee.Add(data.Text("@to", eq.To))
		ee.Add(data.Text("@scope", eq.Scope))
		root.Add(ee)
	}
	return root
}

func sigToXML(s Sig) *data.Node {
	label := "value"
	if s.IsFilter {
		label = "filter"
	}
	if s.Leaf != "" {
		n := data.Elem("leaf")
		n.Add(data.Text("@label", s.Leaf))
		return n
	}
	n := data.Elem(label)
	if s.Model != "" {
		n.Add(data.Text("@model", s.Model))
	}
	n.Add(data.Text("@pattern", s.Pattern))
	return n
}

// FromXML parses an interface description. Malformed elements fail here,
// naming the interface and the offending element, so an import surfaces the
// problem at connect time instead of as an opaque planning failure later.
func FromXML(n *data.Node) (*Interface, error) {
	if n == nil || n.Label != "interface" {
		return nil, fmt.Errorf("capability: expected <interface>")
	}
	name := attr(n, "name")
	where := func(elem string) string {
		return fmt.Sprintf("capability: interface %q: %s", name, elem)
	}
	i := NewInterface(name)
	for _, k := range n.Kids {
		switch k.Label {
		case "fmodel":
			m := NewFModel(attr(k, "name"))
			for _, pe := range k.Kids {
				if pe.Label != "fpattern" {
					continue
				}
				body := firstElem(pe)
				if body == nil {
					return nil, fmt.Errorf("%s: empty <fpattern %q>", where(fmt.Sprintf("fmodel %q", attr(k, "name"))), attr(pe, "name"))
				}
				ft, err := FTFromXML(body)
				if err != nil {
					return nil, fmt.Errorf("%s: fpattern %q: %w", where(fmt.Sprintf("fmodel %q", attr(k, "name"))), attr(pe, "name"), err)
				}
				m.Define(attr(pe, "name"), ft)
			}
			i.FModels = append(i.FModels, m)
		case "bindcap":
			if attr(k, "doc") == "" {
				return nil, fmt.Errorf("%s without doc attribute", where("<bindcap>"))
			}
			i.Binds[attr(k, "doc")] = BindCap{FModel: attr(k, "fmodel"), FPattern: attr(k, "fpattern")}
		case "structure":
			me := k.Child("model")
			if me == nil || me.Atom == nil || strings.TrimSpace(me.Atom.S) == "" {
				return nil, fmt.Errorf("%s without model text", where(fmt.Sprintf("<structure doc=%q>", attr(k, "doc"))))
			}
			m, err := pattern.ParseModel(me.Atom.S)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", where(fmt.Sprintf("<structure doc=%q>", attr(k, "doc"))), err)
			}
			i.Structures[attr(k, "doc")] = StructureRef{Model: m, Pattern: attr(k, "pattern")}
		case "operation":
			op := Operation{Name: attr(k, "name"), Kind: attr(k, "kind")}
			if op.Name == "" {
				return nil, fmt.Errorf("%s without name attribute", where("<operation>"))
			}
			if op.Kind == "" {
				return nil, fmt.Errorf("%s without kind attribute", where(fmt.Sprintf("<operation name=%q>", op.Name)))
			}
			if ds := attr(k, "docs"); ds != "" {
				op.Docs = strings.Fields(ds)
			}
			if in := k.Child("input"); in != nil {
				for _, s := range in.Kids {
					if isAttr(s) {
						continue
					}
					op.Inputs = append(op.Inputs, sigFromXML(s))
				}
			}
			if out := k.Child("output"); out != nil {
				if s := firstElem(out); s != nil {
					sig := sigFromXML(s)
					op.Output = &sig
				}
			}
			i.Operations = append(i.Operations, op)
		case "equivalence":
			i.Equivalences = append(i.Equivalences, Equivalence{
				Name:  attr(k, "name"),
				From:  attr(k, "from"),
				To:    attr(k, "to"),
				Scope: attr(k, "scope"),
			})
		}
	}
	return i, nil
}

func sigFromXML(n *data.Node) Sig {
	if n.Label == "leaf" {
		return Sig{Leaf: attr(n, "label")}
	}
	return Sig{
		Model:    attr(n, "model"),
		Pattern:  attr(n, "pattern"),
		IsFilter: n.Label == "filter",
	}
}

// Marshal renders the interface as indented XML.
func Marshal(i *Interface) string { return xmlenc.SerializeIndent(ToXML(i)) }

// Unmarshal parses an interface from XML text.
func Unmarshal(src string) (*Interface, error) {
	n, err := xmlenc.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromXML(n)
}

func attr(n *data.Node, name string) string {
	if c := n.Child("@" + name); c != nil && c.Atom != nil {
		return c.Atom.S
	}
	return ""
}

func isAttr(n *data.Node) bool { return len(n.Label) > 0 && n.Label[0] == '@' }

func firstElem(n *data.Node) *data.Node {
	for _, k := range n.Kids {
		if !isAttr(k) {
			return k
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
