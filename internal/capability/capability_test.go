package capability

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/pattern"
	"repro/internal/xmlenc"
)

// o2InterfaceXML transcribes Figure 6 of the paper: the O₂ filter patterns
// and operational interface (extended with an Fextent pattern governing
// binds over the artifacts extent, and the persons extent used by the
// DJoin-to-Join rewriting of Figure 7).
const o2InterfaceXML = `
<interface name="o2artifact">
 <fmodel name="o2fmodel">
  <fpattern name="Fclass">
   <node label="class" bind="tree">
    <node label="Symbol" bind="none" inst="ground">
     <ref pattern="Ftype"/></node></node>
  </fpattern>
  <fpattern name="Ftype">
   <union>
    <leaf label="Int"/>
    <leaf label="Bool"/>
    <leaf label="Float"/>
    <leaf label="String"/>
    <node label="tuple" bind="tree">
     <star inst="ground">
      <node label="Symbol" bind="none">
       <ref pattern="Ftype"/></node></star></node>
    <node label="set" col="set" bind="tree">
     <star inst="none"><ref pattern="Ftype"/></star></node>
    <node label="bag" col="bag" bind="tree">
     <star inst="none"><ref pattern="Ftype"/></star></node>
    <node label="list" col="list" bind="tree">
     <star inst="none"><ref pattern="Ftype"/></star></node>
    <node label="array" col="array" bind="tree">
     <star inst="none"><ref pattern="Ftype"/></star></node>
    <ref pattern="Fclass"/>
   </union>
  </fpattern>
  <fpattern name="Fextent">
   <node label="set" col="set" bind="tree">
    <star inst="none"><ref pattern="Fclass"/></star></node>
  </fpattern>
 </fmodel>
 <bindcap doc="artifacts" fmodel="o2fmodel" fpattern="Fextent"/>
 <bindcap doc="persons" fmodel="o2fmodel" fpattern="Fextent"/>
 <operation name="bind" kind="algebra">
  <input>
   <value model="o2model" pattern="Type"/>
   <filter model="o2fmodel" pattern="Ftype"/></input>
  <output><value model="yat" pattern="Tab"/></output>
 </operation>
 <operation name="select" kind="algebra"></operation>
 <operation name="project" kind="algebra"></operation>
 <operation name="join" kind="algebra"></operation>
 <operation name="map" kind="algebra"></operation>
 <operation name="eq" kind="boolean"></operation>
 <operation name="leq" kind="boolean"></operation>
 <operation name="current_price" kind="method">
  <input><value model="artifacts" pattern="Artifact"/></input>
  <output><leaf label="Float"/></output>
 </operation>
</interface>`

// waisInterfaceXML transcribes the XML-Wais interface of Section 4.2.
const waisInterfaceXML = `
<interface name="xmlartwork">
 <fmodel name="waisfmodel">
  <fpattern name="Fworks">
   <node label="works" bind="none" inst="ground">
    <star inst="none">
     <ref pattern="work" bind="tree"/>
    </star></node>
  </fpattern>
 </fmodel>
 <bindcap doc="works" fmodel="waisfmodel" fpattern="Fworks"/>
 <operation name="bind" kind="algebra"></operation>
 <operation name="select" kind="algebra"></operation>
 <operation name="contains" kind="external">
  <input>
   <value model="Artworks_Structure" pattern="Work"/>
   <leaf label="String"/></input>
  <output><leaf label="Bool"/></output>
 </operation>
 <equivalence name="contains-eq" from="eq" to="contains" scope="work"/>
</interface>`

func o2Interface(t *testing.T) *Interface {
	t.Helper()
	i, err := Unmarshal(o2InterfaceXML)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func waisInterface(t *testing.T) *Interface {
	t.Helper()
	i, err := Unmarshal(waisInterfaceXML)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestFigure6ParseO2(t *testing.T) {
	i := o2Interface(t)
	if i.Name != "o2artifact" {
		t.Errorf("name = %q", i.Name)
	}
	m := i.FModel("o2fmodel")
	if m == nil {
		t.Fatal("missing fmodel")
	}
	if len(m.Order) != 3 {
		t.Errorf("fpatterns = %v", m.Order)
	}
	ftype := m.Lookup("Ftype")
	if ftype == nil || len(ftype.Alts) != 10 {
		t.Fatalf("Ftype = %v", ftype)
	}
	if !i.HasOperation("bind") || !i.HasOperation("eq") || i.HasOperation("contains") {
		t.Error("operation set wrong")
	}
	op := i.Operation("current_price")
	if op == nil || op.Kind != "method" || op.Output == nil || op.Output.Leaf != "Float" {
		t.Errorf("current_price = %+v", op)
	}
}

func TestInterfaceXMLRoundTrip(t *testing.T) {
	for _, src := range []string{o2InterfaceXML, waisInterfaceXML} {
		i, err := Unmarshal(src)
		if err != nil {
			t.Fatal(err)
		}
		s := Marshal(i)
		back, err := Unmarshal(s)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, s)
		}
		if Marshal(back) != s {
			t.Errorf("round trip unstable for %s", i.Name)
		}
		if len(back.Operations) != len(i.Operations) || len(back.Binds) != len(i.Binds) {
			t.Errorf("lost operations/binds in round trip")
		}
	}
}

// view1ArtifactsFilter is the artifacts-side Bind filter of the view1
// integration program; per Section 4.1 it is entirely acceptable to O₂.
const view1ArtifactsFilter = `set[ *class[ artifact.tuple[ title: $t, year: $y, creator: $c, price: $p,
	owners.list[ *class[ person.tuple[ name: $o, auction: $au ] ] ] ] ] ]`

func TestO2AcceptsView1Filter(t *testing.T) {
	i := o2Interface(t)
	f := filter.MustParse(view1ArtifactsFilter)
	if err := i.AcceptsFilter("artifacts", f); err != nil {
		t.Errorf("O2 must accept the view1 artifacts filter: %v", err)
	}
}

func TestO2Acceptance(t *testing.T) {
	i := o2Interface(t)
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"whole extent", `set[ *class@$c ]`, true},
		{"tree var on class", `set[ *class@$c[ artifact.tuple[ title: $t ] ] ]`, true},
		{"schema query (label var on class name)", `set[ *class[ ~$name: @Any ] ]`, false},
		{"label var on attributes", `set[ *class[ artifact.tuple[ *~$attr: $v ] ] ]`, false},
		{"wildcard class name ok if ground label", `set[ *class[ artifact: @Any ] ]`, true},
		{"generic class name not ground", `set[ *class[ %[ tuple[ title: $t ] ] ] ]`, false},
		{"enumerating set members", `set[ class[ artifact.tuple[ title: $t ] ] ]`, false},
		{"descend", `set[ *class[ **title: $t ] ]`, false},
		{"collect star over tuple attrs", `set[ *class[ artifact.tuple[ title: $t, *($rest) ] ] ]`, false},
		{"constant leaf", `set[ *class[ artifact.tuple[ creator: "Claude Monet" ] ] ]`, true},
		{"unknown doc", `set[ *class@$c ]`, true},
	}
	for _, c := range cases {
		f := filter.MustParse(c.src)
		err := i.AcceptsFilter("artifacts", f)
		if (err == nil) != c.ok {
			t.Errorf("%s: AcceptsFilter(%s) = %v, want ok=%v", c.name, c.src, err, c.ok)
		}
	}
	if err := i.AcceptsFilter("nosuchdoc", filter.MustParse(`set[ *class@$c ]`)); err == nil {
		t.Error("unknown document must be rejected")
	}
}

func TestWaisAcceptance(t *testing.T) {
	i := waisInterface(t)
	cases := []struct {
		name string
		src  string
		ok   bool
	}{
		{"bind whole documents", `works[ *work@$w ]`, true},
		{"navigate inside documents", `works[ *work[ title: $t ] ]`, false},
		{"bind the works root", `works@$all[ *work@$w ]`, false},
		{"single work", `works[ work@$w ]`, false},
		{"collect works", `works[ *($docs) ]`, true},
	}
	for _, c := range cases {
		f := filter.MustParse(c.src)
		err := i.AcceptsFilter("works", f)
		if (err == nil) != c.ok {
			t.Errorf("%s: AcceptsFilter(%s) = %v, want ok=%v", c.name, c.src, err, c.ok)
		}
	}
}

func TestEquivalenceLookup(t *testing.T) {
	i := waisInterface(t)
	eq := i.EquivalenceTo("contains")
	if eq == nil || eq.From != "eq" || eq.Scope != "work" {
		t.Fatalf("equivalence = %+v", eq)
	}
	if o2Interface(t).EquivalenceTo("contains") != nil {
		t.Error("O2 declares no contains equivalence")
	}
}

func TestFTString(t *testing.T) {
	i := o2Interface(t)
	s := i.FModel("o2fmodel").Lookup("Fclass").String()
	for _, frag := range []string{"class{bind=tree}", "Symbol{bind=none,inst=ground}", "&Ftype"} {
		if !strings.Contains(s, frag) {
			t.Errorf("FT string missing %q: %s", frag, s)
		}
	}
}

func TestFTXMLErrors(t *testing.T) {
	bad := []string{
		`<leaf label="Void"/>`,
		`<ref/>`,
		`<mystery/>`,
		`<node label="a"><star/></node>`,
	}
	for _, src := range bad {
		n, err := parseXMLFixture(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := FTFromXML(n); err == nil {
			t.Errorf("FTFromXML(%q) should fail", src)
		}
	}
	if _, err := Unmarshal(`<notaninterface/>`); err == nil {
		t.Error("non-interface root must fail")
	}
	if _, err := Unmarshal(`<interface name="x"><fmodel name="m"><fpattern name="p"></fpattern></fmodel></interface>`); err == nil {
		t.Error("empty fpattern must fail")
	}
}

func TestFlagParsing(t *testing.T) {
	for _, c := range []struct {
		s string
		b BindFlag
	}{{"tree", BindTree}, {"label", BindLabel}, {"none", BindNone}, {"", BindAny}, {"junk", BindAny}} {
		if got := BindFlagFromString(c.s); got != c.b {
			t.Errorf("BindFlagFromString(%q) = %v", c.s, got)
		}
		if c.s != "junk" && c.b.String() != c.s {
			t.Errorf("%v.String() = %q", c.b, c.b.String())
		}
	}
	for _, c := range []struct {
		s string
		f InstFlag
	}{{"ground", InstGround}, {"none", InstNone}, {"", InstAny}} {
		if got := InstFlagFromString(c.s); got != c.f {
			t.Errorf("InstFlagFromString(%q) = %v", c.s, got)
		}
		if c.f.String() != c.s {
			t.Errorf("%v.String() = %q", c.f, c.f.String())
		}
	}
}

func parseXMLFixture(src string) (*data.Node, error) { return xmlenc.Parse(src) }

// TestStructureXMLRoundTrip covers the piece TestInterfaceXMLRoundTrip's
// fixtures predate: structural schemas (Interface.Structures) must survive
// the wire — the mediator's plan typing is seeded entirely from what
// arrives here, so a schema lost or corrupted in transit silently turns
// every type check into a no-op.
func TestStructureXMLRoundTrip(t *testing.T) {
	works, err := pattern.ParseModel(
		`model wrapworks
		Works := works[ *work[ artist[String], title[String], style[String] ] ]`)
	if err != nil {
		t.Fatal(err)
	}
	docs, err := pattern.ParseModel(
		`model wrapdocs
		Doc := doc[ *item[ name[String], num[Int] ] ]`)
	if err != nil {
		t.Fatal(err)
	}
	i := NewInterface("structured")
	i.Structures["works"] = StructureRef{Model: works, Pattern: "Works"}
	i.Structures["docs"] = StructureRef{Model: docs, Pattern: "Doc"}
	// A nil-model ref must be skipped, not serialized as an empty element.
	i.Structures["untyped"] = StructureRef{Pattern: "Nope"}

	s := Marshal(i)
	back, err := Unmarshal(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if Marshal(back) != s {
		t.Error("round trip unstable")
	}
	if len(back.Structures) != 2 {
		t.Fatalf("structures after round trip: %d, want 2 (nil-model ref dropped)", len(back.Structures))
	}
	for doc, want := range map[string]string{"works": "Works", "docs": "Doc"} {
		ref, ok := back.Structures[doc]
		if !ok {
			t.Fatalf("structure %s lost in round trip", doc)
		}
		if ref.Pattern != want {
			t.Errorf("%s pattern = %q, want %q", doc, ref.Pattern, want)
		}
		if ref.Model == nil || ref.Model.String() != i.Structures[doc].Model.String() {
			t.Errorf("%s model changed in round trip:\n got %v\nwant %v",
				doc, ref.Model, i.Structures[doc].Model)
		}
	}
	// The reparsed model is semantically usable, not just textually equal:
	// the declared pattern resolves and subsumes itself.
	wp := back.Structures["works"].Model.Lookup("Works")
	if wp == nil {
		t.Fatal("Works pattern unresolvable after round trip")
	}
	if !pattern.Subsumes(back.Structures["works"].Model, wp, back.Structures["works"].Model, wp) {
		t.Error("reparsed pattern does not subsume itself")
	}
}

// ---------------------------------------------------------------------------
// Document-scoped operations (PR 7)
// ---------------------------------------------------------------------------

func TestOperationDocScoping(t *testing.T) {
	i := NewInterface("scoped")
	i.Operations = append(i.Operations,
		Operation{Name: "bind", Kind: "algebra"}, // unscoped: all docs
		Operation{Name: "join", Kind: "algebra", Docs: []string{"artifacts", "persons"}},
		Operation{Name: "join", Kind: "algebra", Docs: []string{"artifacts.nodes"}},
		Operation{Name: "lt", Kind: "boolean", Docs: []string{"artifacts.nodes"}},
	)
	if !i.CoversOperation("bind", []string{"artifacts", "artifacts.nodes"}) {
		t.Fatalf("unscoped operation must cover every doc")
	}
	if !i.CoversOperation("join", []string{"artifacts", "persons"}) {
		t.Fatalf("join should cover the extent family")
	}
	if !i.CoversOperation("join", []string{"artifacts.nodes"}) {
		t.Fatalf("join should cover the node-table family")
	}
	// The crucial case: both families are individually joinable, but no
	// single declaration covers a mix, so a merged cross-family join is out.
	if i.CoversOperation("join", []string{"artifacts", "artifacts.nodes"}) {
		t.Fatalf("cross-family join must not be covered")
	}
	if i.HasOperationFor("lt", "artifacts") {
		t.Fatalf("lt is scoped to the node table only")
	}
	if !i.HasOperationFor("lt", "artifacts.nodes") {
		t.Fatalf("lt should be available on the node table")
	}
	// Empty doc set degenerates to plain presence.
	if !i.CoversOperation("lt", nil) {
		t.Fatalf("empty doc set should behave like HasOperation")
	}
	if i.CoversOperation("gt", nil) {
		t.Fatalf("undeclared operation must not be covered")
	}
}

func TestOperationDocsXMLRoundTrip(t *testing.T) {
	i := NewInterface("scoped")
	i.Operations = append(i.Operations,
		Operation{Name: "select", Kind: "algebra"},
		Operation{Name: "lt", Kind: "boolean", Docs: []string{"works.nodes", "extra.nodes"}},
	)
	back, err := Unmarshal(Marshal(i))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	op := back.OperationFor("lt", []string{"works.nodes", "extra.nodes"})
	if op == nil {
		t.Fatalf("scoped lt lost in round-trip:\n%s", Marshal(i))
	}
	if len(op.Docs) != 2 || op.Docs[0] != "works.nodes" || op.Docs[1] != "extra.nodes" {
		t.Fatalf("docs mangled: %v", op.Docs)
	}
	if sel := back.Operation("select"); sel == nil || len(sel.Docs) != 0 {
		t.Fatalf("unscoped select should stay unscoped")
	}
	if back.CoversOperation("lt", []string{"works"}) {
		t.Fatalf("round-tripped scope must still exclude other docs")
	}
}
