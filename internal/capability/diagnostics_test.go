package capability

import (
	"strings"
	"testing"
)

// Import diagnostics: a malformed description must fail the parse with an
// error naming the interface and the offending element, so a bad wrapper
// export is caught at connect time instead of surfacing as an opaque
// planning failure later.
func TestFromXMLNamesOffendingElement(t *testing.T) {
	cases := []struct {
		name, src string
		want      []string // substrings the error must carry
	}{
		{"empty structure",
			`<interface name="badsrc"><structure doc="records"><model>  </model></structure></interface>`,
			[]string{`"badsrc"`, `<structure doc="records">`, "model text"}},
		{"missing structure model",
			`<interface name="badsrc"><structure doc="records"/></interface>`,
			[]string{`"badsrc"`, `<structure doc="records">`}},
		{"unparseable structure model",
			`<interface name="badsrc"><structure doc="records"><model>model X :=</model></structure></interface>`,
			[]string{`"badsrc"`, `<structure doc="records">`}},
		{"operation without name",
			`<interface name="badsrc"><operation kind="boolean"/></interface>`,
			[]string{`"badsrc"`, "<operation>", "name"}},
		{"operation without kind",
			`<interface name="badsrc"><operation name="eq"/></interface>`,
			[]string{`"badsrc"`, `<operation name="eq">`, "kind"}},
		{"empty fpattern",
			`<interface name="badsrc"><fmodel name="m"><fpattern name="F"></fpattern></fmodel></interface>`,
			[]string{`"badsrc"`, `fmodel "m"`, `<fpattern "F">`}},
		{"bindcap without doc",
			`<interface name="badsrc"><bindcap fmodel="m" fpattern="F"/></interface>`,
			[]string{`"badsrc"`, "<bindcap>"}},
	}
	for _, c := range cases {
		_, err := Unmarshal(c.src)
		if err == nil {
			t.Errorf("%s: parse must fail", c.name)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q must mention %q", c.name, err, w)
			}
		}
	}
}

// A well-formed interface still parses after the validation tightening.
func TestFromXMLAcceptsWellFormed(t *testing.T) {
	src := `<interface name="goodsrc">
	  <fmodel name="m"><fpattern name="F"><node label="records" bind="none"/></fpattern></fmodel>
	  <bindcap doc="records" fmodel="m" fpattern="F"/>
	  <operation name="bind" kind="algebra"/>
	  <operation name="eq" kind="boolean" docs="records"/>
	</interface>`
	i, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if i.Name != "goodsrc" || !i.HasOperation("eq") {
		t.Errorf("parsed interface lost content: %+v", i)
	}
}
