// Package capability implements the source-description language of
// Section 4: Fmodels of Fpatterns with bind/inst flags describing the
// filters a source accepts, operational interfaces declaring which algebraic
// operations a source evaluates (Figure 6), and declared equivalences
// connecting source-specific predicates with algebra predicates (the
// contains/equality connection of Section 4.2).
//
// The central judgement is AcceptsFilter: is a Bind filter admissible for a
// source, i.e. is it an instance of the exported Fpattern respecting every
// flag? The optimizer uses it (with AcceptsPlan, in internal/optimizer) to
// decide which subplans can be pushed.
package capability

import (
	"fmt"
	"strings"

	"repro/internal/filter"
	"repro/internal/pattern"
)

// BindFlag restricts which variables a filter may place on a node.
type BindFlag int

// Bind flags, mirroring the bind attribute of Figure 6.
const (
	BindAny   BindFlag = iota // no restriction
	BindTree                  // only a tree variable (bind the whole subtree)
	BindLabel                 // only a label variable
	BindNone                  // no variable at all
)

// String renders the flag as its XML attribute value.
func (b BindFlag) String() string {
	switch b {
	case BindTree:
		return "tree"
	case BindLabel:
		return "label"
	case BindNone:
		return "none"
	default:
		return ""
	}
}

// BindFlagFromString parses a bind attribute value.
func BindFlagFromString(s string) BindFlag {
	switch s {
	case "tree":
		return BindTree
	case "label":
		return BindLabel
	case "none":
		return BindNone
	default:
		return BindAny
	}
}

// InstFlag restricts how a filter may instantiate a label or a star edge.
type InstFlag int

// Inst flags, mirroring the inst attribute of Figure 6.
const (
	InstAny    InstFlag = iota // no restriction
	InstGround                 // must be completely instantiated (concrete)
	InstNone                   // must be left unchanged (stay generic)
)

// String renders the flag as its XML attribute value.
func (i InstFlag) String() string {
	switch i {
	case InstGround:
		return "ground"
	case InstNone:
		return "none"
	default:
		return ""
	}
}

// InstFlagFromString parses an inst attribute value.
func InstFlagFromString(s string) InstFlag {
	switch s {
	case "ground":
		return InstGround
	case "none":
		return InstNone
	default:
		return InstAny
	}
}

// FT is an Fpattern node: a type pattern annotated with filter restrictions.
type FT struct {
	Kind     pattern.Kind // KNode, KUnion, KRef, KInt/KFloat/KBool/KString, KAny
	Label    string       // KNode: concrete label
	AnyLabel bool         // KNode: Symbol wildcard
	Col      pattern.Col
	Bind     BindFlag
	Inst     InstFlag // on Symbol nodes: whether the label must be ground
	Name     string   // KRef: referenced Fpattern (or opaque structural pattern)
	Items    []FTItem
	Alts     []*FT
}

// FTItem is one child position of an Fpattern node.
type FTItem struct {
	F    *FT
	Star bool
	Inst InstFlag // on star edges: ground (enumerate) or none (keep the star)
}

// FModel is a named collection of Fpatterns, exported by a wrapper.
type FModel struct {
	Name  string
	Defs  map[string]*FT
	Order []string
}

// NewFModel returns an empty Fmodel.
func NewFModel(name string) *FModel {
	return &FModel{Name: name, Defs: make(map[string]*FT)}
}

// Define adds a named Fpattern.
func (m *FModel) Define(name string, f *FT) {
	if _, ok := m.Defs[name]; !ok {
		m.Order = append(m.Order, name)
	}
	m.Defs[name] = f
}

// Lookup resolves a name; nil when absent.
func (m *FModel) Lookup(name string) *FT {
	if m == nil {
		return nil
	}
	return m.Defs[name]
}

// Sig is one operation signature entry (an <input> or <output> element).
type Sig struct {
	Model    string // model/fmodel name the pattern lives in
	Pattern  string // pattern name
	IsFilter bool   // a <filter> position rather than a <value>
	Leaf     string // atomic leaf type for predicate signatures ("String", "Bool", ...)
}

// Operation declares one operation a source supports: algebraic operators
// (bind, select, ...), boolean predicates (eq, leq, ...), or external
// functions (contains, current_price).
type Operation struct {
	Name   string
	Kind   string // "algebra", "boolean", "external", "method"
	Inputs []Sig
	Output *Sig
	// Docs, when non-empty, restricts the operation to plans over the named
	// documents. An empty Docs means the operation applies to every document
	// the source exports (the pre-scoping behavior). A source may declare
	// the same operation name several times with disjoint Docs sets — e.g. a
	// join over its extents and, separately, a join over its node-number
	// tables — without thereby claiming it can join the two families
	// together (CoversOperation requires a single declaration to cover the
	// whole document set of a pushed plan).
	Docs []string
}

// covers reports whether this declaration applies to the named document.
func (op *Operation) covers(doc string) bool {
	if len(op.Docs) == 0 {
		return true
	}
	for _, d := range op.Docs {
		if d == doc {
			return true
		}
	}
	return false
}

// Equivalence is a declared semantic connection between an algebra
// predicate and a source-specific one (Section 4.2): starting from a
// selection with From over a variable bound inside a tree rooted at an
// Fpattern-accepted subtree, one may introduce the more general To
// predicate over the subtree's root variable.
type Equivalence struct {
	Name  string
	From  string // algebra predicate, e.g. "eq"
	To    string // source predicate, e.g. "contains"
	Scope string // Fpattern name of the root the To predicate applies to
}

// Interface is the full operational interface a wrapper exports (Figure 6).
type Interface struct {
	Name         string
	FModels      []*FModel
	Operations   []Operation
	Equivalences []Equivalence
	// Binds lists, per exported document, the Fpattern governing binds on
	// it: docname -> (fmodel, fpattern).
	Binds map[string]BindCap
	// Structures optionally carries, per exported document, the source's
	// structural schema (Figure 3's export): the pattern every instance of
	// the document's members instantiates. The mediator seeds plan typing
	// from these on connect; ImportStructure can still override them.
	Structures map[string]StructureRef
}

// StructureRef names a pattern inside a structural model: the declared
// type of one document's members.
type StructureRef struct {
	Model   *pattern.Model
	Pattern string
}

// BindCap names the Fpattern that governs Bind operations over a document.
type BindCap struct {
	FModel   string
	FPattern string
}

// NewInterface returns an empty interface description.
func NewInterface(name string) *Interface {
	return &Interface{
		Name:       name,
		Binds:      make(map[string]BindCap),
		Structures: make(map[string]StructureRef),
	}
}

// FModel resolves an Fmodel by name.
func (i *Interface) FModel(name string) *FModel {
	for _, m := range i.FModels {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Operation resolves an operation by name; nil when absent.
func (i *Interface) Operation(name string) *Operation {
	for k := range i.Operations {
		if i.Operations[k].Name == name {
			return &i.Operations[k]
		}
	}
	return nil
}

// HasOperation reports whether the source declared the operation for at
// least one of its documents. Callers that know which documents a pushed
// plan touches should prefer CoversOperation.
func (i *Interface) HasOperation(name string) bool { return i.Operation(name) != nil }

// CoversOperation reports whether a single declared operation entry named
// name applies to every document in docs. A declaration with empty Docs
// covers everything; a scoped declaration covers only its listed documents.
// Requiring one entry to cover the whole set (rather than each doc being
// covered by some entry) keeps a source honest about cross-family
// operations: declaring join over its extents and, separately, join over
// its node tables does not claim a join mixing the two.
func (i *Interface) CoversOperation(name string, docs []string) bool {
	for k := range i.Operations {
		op := &i.Operations[k]
		if op.Name != name {
			continue
		}
		all := true
		for _, d := range docs {
			if !op.covers(d) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// HasOperationFor reports whether the operation is declared for one document.
func (i *Interface) HasOperationFor(name, doc string) bool {
	return i.CoversOperation(name, []string{doc})
}

// OperationFor resolves the first operation entry named name that covers the
// given document set; nil when absent.
func (i *Interface) OperationFor(name string, docs []string) *Operation {
	for k := range i.Operations {
		op := &i.Operations[k]
		if op.Name != name {
			continue
		}
		all := true
		for _, d := range docs {
			if !op.covers(d) {
				all = false
				break
			}
		}
		if all {
			return op
		}
	}
	return nil
}

// Equivalence resolves a declared equivalence by target predicate.
func (i *Interface) EquivalenceTo(to string) *Equivalence {
	for k := range i.Equivalences {
		if i.Equivalences[k].To == to {
			return &i.Equivalences[k]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Filter acceptance
// ---------------------------------------------------------------------------

// AcceptsFilter reports whether a Bind filter over the named document is
// admissible for this interface, i.e. whether the filter instantiates the
// document's Fpattern under every bind/inst flag. A non-nil error explains
// the first violation (useful in optimizer traces and tests).
func (i *Interface) AcceptsFilter(doc string, f *filter.Filter) error {
	cap, ok := i.Binds[doc]
	if !ok {
		return fmt.Errorf("capability: source %s does not export binds on %q", i.Name, doc)
	}
	m := i.FModel(cap.FModel)
	if m == nil {
		return fmt.Errorf("capability: unknown fmodel %q", cap.FModel)
	}
	root := m.Lookup(cap.FPattern)
	if root == nil {
		return fmt.Errorf("capability: unknown fpattern %q", cap.FPattern)
	}
	chk := &checker{m: m}
	return chk.accept(root, f.Root)
}

type checker struct {
	m     *FModel
	depth int
}

func (c *checker) accept(ft *FT, fn *filter.FNode) error {
	if ft == nil || fn == nil {
		return fmt.Errorf("capability: nil pattern or filter")
	}
	if c.depth > 64 {
		return fmt.Errorf("capability: fpattern recursion too deep")
	}
	c.depth++
	defer func() { c.depth-- }()
	switch ft.Kind {
	case pattern.KAny:
		return nil
	case pattern.KRef:
		target := c.m.Lookup(ft.Name)
		if target == nil {
			// Opaque structural type: the filter may bind it as a whole
			// (subject to this node's flags) but not navigate inside.
			if len(fn.Items) > 0 {
				return fmt.Errorf("capability: cannot navigate inside opaque type %s", ft.Name)
			}
			return c.flags(ft, fn)
		}
		return c.accept(target, fn)
	case pattern.KUnion:
		var firstErr error
		for _, a := range ft.Alts {
			if err := c.accept(a, fn); err == nil {
				return nil
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("capability: empty union")
		}
		return firstErr
	case pattern.KInt, pattern.KFloat, pattern.KBool, pattern.KString:
		// Atomic positions: content variables and constants are fine;
		// navigation below is not.
		if len(fn.Items) > 0 {
			return fmt.Errorf("capability: navigation below an atomic position")
		}
		if fn.LabelVar != "" {
			return fmt.Errorf("capability: label variable on an atomic position")
		}
		return nil
	case pattern.KNode:
		if err := c.flags(ft, fn); err != nil {
			return err
		}
		return c.acceptItems(ft.Items, fn.Items)
	default:
		return fmt.Errorf("capability: unsupported fpattern kind %v", ft.Kind)
	}
}

// flags checks the label and variable restrictions of one node.
func (c *checker) flags(ft *FT, fn *filter.FNode) error {
	// Label discipline.
	if ft.Kind == pattern.KNode {
		if ft.AnyLabel {
			switch ft.Inst {
			case InstGround:
				if fn.Label == "" || fn.AnyLabel || fn.LabelVar != "" {
					return fmt.Errorf("capability: label must be ground (inst=ground), got %q", fn)
				}
			case InstNone:
				if fn.Label != "" {
					return fmt.Errorf("capability: label must be left generic (inst=none), got %q", fn.Label)
				}
			}
		} else if ft.Label != "" {
			if fn.Label != ft.Label {
				return fmt.Errorf("capability: filter label %q does not match pattern label %q", fn.Label, ft.Label)
			}
		}
	}
	// Variable discipline.
	switch ft.Bind {
	case BindNone:
		if fn.Var != "" || fn.LabelVar != "" {
			return fmt.Errorf("capability: node %q may not be bound (bind=none)", fn)
		}
	case BindTree:
		if fn.LabelVar != "" {
			return fmt.Errorf("capability: node %q allows only tree variables (bind=tree)", fn)
		}
	case BindLabel:
		if fn.Var != "" {
			return fmt.Errorf("capability: node %q allows only label variables (bind=label)", fn)
		}
	}
	return nil
}

// acceptItems maps each filter item onto an fpattern item via memoized
// sequence matching, enforcing the star inst flags: a ground star must be
// enumerated by non-star filter items; a none star must be matched by
// starred filter items (the filter keeps the edge generic).
func (c *checker) acceptItems(fts []FTItem, fis []filter.FItem) error {
	type key struct{ i, j int }
	memo := map[key]error{}
	var rec func(i, j int) error
	rec = func(i, j int) error {
		if i == len(fis) {
			return nil // remaining fpattern items are simply not used
		}
		k := key{i, j}
		if e, ok := memo[k]; ok {
			return e
		}
		memo[k] = fmt.Errorf("capability: cycle")
		fi := fis[i]
		var lastErr error
		for jj := j; jj < len(fts); jj++ {
			ftIt := fts[jj]
			if err := c.acceptItem(ftIt, fi); err != nil {
				lastErr = err
				continue
			}
			next := jj
			if !ftIt.Star {
				next = jj + 1
			}
			if err := rec(i+1, next); err != nil {
				lastErr = err
				continue
			}
			memo[k] = nil
			return nil
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("capability: filter item %d has no matching pattern position", i)
		}
		memo[k] = lastErr
		return lastErr
	}
	return rec(0, 0)
}

func (c *checker) acceptItem(ftIt FTItem, fi filter.FItem) error {
	if fi.Descend {
		return fmt.Errorf("capability: descendant navigation (**) cannot be pushed")
	}
	if fi.CollectVar != "" {
		// Collecting a subsequence requires the member position to allow
		// tree binding and the edge to stay generic.
		if ftIt.Inst == InstGround {
			return fmt.Errorf("capability: collect-star on a ground edge")
		}
		if !ftIt.Star {
			return fmt.Errorf("capability: collect-star on a non-star position")
		}
		if ftIt.F != nil && ftIt.F.Bind == BindNone {
			return fmt.Errorf("capability: collect-star over unbindable members")
		}
		return nil
	}
	switch ftIt.Inst {
	case InstGround:
		if fi.Star {
			return fmt.Errorf("capability: star edge must be instantiated (inst=ground)")
		}
	case InstNone:
		if !fi.Star && ftIt.Star {
			return fmt.Errorf("capability: edge must be left generic (inst=none); enumerating members is not supported")
		}
	}
	return c.accept(ftIt.F, fi.F)
}

// String renders the Fpattern in a compact textual form (diagnostics).
func (f *FT) String() string {
	var b strings.Builder
	f.write(&b)
	return b.String()
}

func (f *FT) write(b *strings.Builder) {
	if f == nil {
		b.WriteString("<nil>")
		return
	}
	switch f.Kind {
	case pattern.KAny:
		b.WriteString("Any")
	case pattern.KInt:
		b.WriteString("Int")
	case pattern.KFloat:
		b.WriteString("Float")
	case pattern.KBool:
		b.WriteString("Bool")
	case pattern.KString:
		b.WriteString("String")
	case pattern.KRef:
		b.WriteByte('&')
		b.WriteString(f.Name)
	case pattern.KUnion:
		b.WriteByte('(')
		for i, a := range f.Alts {
			if i > 0 {
				b.WriteString(" | ")
			}
			a.write(b)
		}
		b.WriteByte(')')
	case pattern.KNode:
		if f.AnyLabel {
			b.WriteString("Symbol")
		} else {
			b.WriteString(f.Label)
		}
		var flags []string
		if f.Bind != BindAny {
			flags = append(flags, "bind="+f.Bind.String())
		}
		if f.Inst != InstAny {
			flags = append(flags, "inst="+f.Inst.String())
		}
		if len(flags) > 0 {
			fmt.Fprintf(b, "{%s}", strings.Join(flags, ","))
		}
		b.WriteString("[ ")
		for i, it := range f.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			if it.Star {
				b.WriteByte('*')
				if it.Inst != InstAny {
					fmt.Fprintf(b, "{inst=%s}", it.Inst.String())
				}
			}
			it.F.write(b)
		}
		b.WriteString(" ]")
	}
}
