package yat

// The benchmark harness of EXPERIMENTS.md: one benchmark (or benchmark
// family) per reproduced figure of the paper, plus the transfer/crossover
// sweeps the claims of Section 5.3 imply. Absolute numbers depend on this
// substrate; the *shapes* (who wins, by what factor, where the crossover
// falls) are the reproduction targets recorded in EXPERIMENTS.md.
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/filter"
	"repro/internal/mediator"
	"repro/internal/o2wrap"
	"repro/internal/tab"
	"repro/internal/waiswrap"
	"repro/internal/wire"
)

// benchSetup wires the cultural mediator over a generated workload.
func benchSetup(b *testing.B, n int) (*mediator.Mediator, *datagen.Workload) {
	b.Helper()
	w := datagen.Generate(datagen.DefaultParams(n))
	m, _, _, err := NewCulturalMediator(w.DB, w.Works)
	if err != nil {
		b.Fatal(err)
	}
	return m, w
}

// sourceCtx builds an evaluation context backed by the two wrappers.
func sourceCtx(w *datagen.Workload) *algebra.Context {
	ctx := algebra.NewContext()
	ow := o2wrap.New("o2artifact", w.DB)
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	ctx.Sources["o2artifact"] = ow
	ctx.Sources["xmlartwork"] = ww
	ctx.Funcs["contains"] = waiswrap.Contains
	return ctx
}

func mustEval(b *testing.B, op algebra.Op, ctx *algebra.Context) int {
	b.Helper()
	res, err := op.Eval(ctx)
	if err != nil {
		b.Fatal(err)
	}
	return res.Len()
}

// ---------------------------------------------------------------------------
// Figure 4 — the Bind and Tree operators
// ---------------------------------------------------------------------------

func BenchmarkFig4Bind(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("works=%d", n), func(b *testing.B) {
			w := datagen.Generate(datagen.DefaultParams(n))
			ctx := algebra.NewContext()
			ctx.Catalog["works"] = w.Works
			bind := &algebra.Bind{Doc: "works", F: filter.MustParse(
				`works[ *work[ artist: $a, title: $t, style: $s, size: $si, *($fields) ] ]`)}
			ctx.Catalog["works"] = wrapWorks(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustEval(b, bind, ctx)
			}
		})
	}
}

func BenchmarkFig4Tree(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("works=%d", n), func(b *testing.B) {
			w := datagen.Generate(datagen.DefaultParams(n))
			ctx := algebra.NewContext()
			ctx.Catalog["works"] = wrapWorks(w)
			plan := &algebra.TreeOp{
				From: &algebra.Bind{Doc: "works", F: filter.MustParse(
					`works[ *work[ artist: $a, title: $t ] ]`)},
				C: algebra.MustParseCons(`artists[ *($a) artist[ name: $a, *($t) title: $t ] ]`),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustEval(b, plan, ctx)
			}
		})
	}
}

func wrapWorks(w *datagen.Workload) []*Node {
	root := &Node{Label: "works"}
	root.Kids = append(root.Kids, w.Works...)
	return []*Node{root}
}

// ---------------------------------------------------------------------------
// Figure 7 (upper) — Bind vs DJoin split vs Join with the extent
// ---------------------------------------------------------------------------

// fig7Plans builds the three equivalent plans of Figure 7's upper row: the
// monolithic Bind navigating owner references, its DJoin split, and the
// Join against the persons extent with hashable identifier columns.
func fig7Plans() (mono, split, join algebra.Op) {
	mono = &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
		`set[ *class[ artifact.tuple[ title: $t,
		      owners.list[ *class[ person.tuple[ name: $o ] ] ] ] ] ]`)}
	split = &algebra.DJoin{
		L: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t, owners@$ow ] ] ]`)},
		R: &algebra.Bind{Col: "$ow", F: filter.MustParse(
			`owners.list[ *class[ person.tuple[ name: $o ] ] ]`)},
	}
	join = &algebra.Join{
		L: &algebra.MapExpr{
			From: &algebra.DJoin{
				L: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
					`set[ *class[ artifact.tuple[ title: $t, owners@$ow ] ] ]`)},
				R: &algebra.Bind{Col: "$ow", F: filter.MustParse(`owners.list[ *%@$ref ]`)},
			},
			Col: "$rid", E: algebra.MustParseExpr(`id($ref)`),
		},
		R: &algebra.MapExpr{
			From: &algebra.Bind{Doc: "persons", F: filter.MustParse(
				`set[ *class@$p[ person.tuple[ name: $o ] ] ]`)},
			Col: "$pid", E: algebra.MustParseExpr(`id($p)`),
		},
		Pred: algebra.MustParseExpr(`$rid = $pid`),
	}
	return mono, split, join
}

func BenchmarkFig7BindSplitJoin(b *testing.B) {
	mono, split, join := fig7Plans()
	for _, n := range []int{100, 1000} {
		w := datagen.Generate(datagen.DefaultParams(n))
		for _, bench := range []struct {
			name string
			plan algebra.Op
			proj []string
		}{
			{"MonolithicBind", mono, []string{"$t", "$o"}},
			{"DJoinSplit", split, []string{"$t", "$o"}},
			{"JoinWithExtent", join, []string{"$t", "$o"}},
		} {
			b.Run(fmt.Sprintf("%s/artifacts=%d", bench.name, n), func(b *testing.B) {
				plan := &algebra.Project{From: bench.plan, Cols: bench.proj}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					ctx := sourceCtx(w) // fresh fetch each round: store population included
					b.StartTimer()
					mustEval(b, plan, ctx)
				}
			})
		}
	}
}

// TestFig7PlansEquivalent pins the equivalence the benchmark relies on.
func TestFig7PlansEquivalent(t *testing.T) {
	mono, split, join := fig7Plans()
	w := datagen.Generate(datagen.DefaultParams(60))
	var results []*Tab
	for _, plan := range []algebra.Op{mono, split, join} {
		p := &algebra.Project{From: plan, Cols: []string{"$t", "$o"}}
		res, err := p.Eval(sourceCtx(w))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !results[0].EqualUnordered(results[1]) || !results[0].EqualUnordered(results[2]) {
		t.Fatalf("Figure 7 plans disagree: %d / %d / %d rows",
			results[0].Len(), results[1].Len(), results[2].Len())
	}
	if results[0].Len() == 0 {
		t.Fatal("empty benchmark fixture")
	}
}

// ---------------------------------------------------------------------------
// Figure 7 (lower middle) — projection/type-driven Bind simplification
// ---------------------------------------------------------------------------

func BenchmarkFig7TypeSimplification(b *testing.B) {
	full := filter.MustParse(
		`works[ *work[ artist: $a, title: $t, style: $s, size: $si, *($fields) ] ]`)
	simplified := filter.MustParse(`works[ *work[ title: $t ] ]`)
	for _, n := range []int{1000, 10000} {
		w := datagen.Generate(datagen.DefaultParams(n))
		forest := wrapWorks(w)
		for _, bench := range []struct {
			name string
			f    *filter.Filter
		}{
			{"FullFilter", full},
			{"SimplifiedFilter", simplified},
		} {
			b.Run(fmt.Sprintf("%s/works=%d", bench.name, n), func(b *testing.B) {
				ctx := algebra.NewContext()
				ctx.Catalog["works"] = forest
				plan := &algebra.Project{
					From: &algebra.Bind{Doc: "works", F: bench.f},
					Cols: []string{"$t"},
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mustEval(b, plan, ctx)
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 8 — Q1: naive composition vs optimized
// ---------------------------------------------------------------------------

func BenchmarkFig8Q1(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		m, _ := benchSetup(b, n)
		b.Run(fmt.Sprintf("Naive/artifacts=%d", n), func(b *testing.B) {
			benchQuery(b, m, Q1, true)
		})
		b.Run(fmt.Sprintf("Optimized/artifacts=%d", n), func(b *testing.B) {
			benchQuery(b, m, Q1, false)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 9 — Q2: naive vs mediator-side optimized vs capability pushdown
// ---------------------------------------------------------------------------

func BenchmarkFig9Q2(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		w := datagen.Generate(datagen.DefaultParams(n))
		m, _, _, err := NewCulturalMediator(w.DB, w.Works)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Naive/artifacts=%d", n), func(b *testing.B) {
			benchQuery(b, m, Q2, true)
		})
		b.Run(fmt.Sprintf("Pushdown/artifacts=%d", n), func(b *testing.B) {
			benchQuery(b, m, Q2, false)
		})
	}
}

func benchQuery(b *testing.B, m *mediator.Mediator, src string, naive bool) {
	b.Helper()
	run := func() *mediator.Result {
		var res *mediator.Result
		var err error
		if naive {
			res, err = m.QueryNaive(src)
		} else {
			res, err = m.Query(src)
		}
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	first := run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(first.Stats.BytesShipped), "bytes-shipped")
	b.ReportMetric(float64(first.Stats.TuplesShipped), "tuples-shipped")
	b.ReportMetric(float64(first.Stats.SourceFetches), "fetches")
	b.ReportMetric(float64(first.Stats.SourcePushes), "pushes")
}

// ---------------------------------------------------------------------------
// Figure 9 (parallel) — Q2 pushdown on the parallel execution engine
// ---------------------------------------------------------------------------

// delaySource adds a fixed service latency to every fetch and push — the
// wide-area round trip of the paper's setting, where sources are remote and
// Section 5.3's costs are dominated by per-query round trips. The latency is
// what the parallel engine overlaps; the work stays identical.
type delaySource struct {
	algebra.Source
	d time.Duration
}

func (s *delaySource) Fetch(doc string) (data.Forest, error) {
	time.Sleep(s.d)
	return s.Source.Fetch(doc)
}

func (s *delaySource) Push(plan algebra.Op, params map[string]tab.Cell) (*tab.Tab, error) {
	time.Sleep(s.d)
	return s.Source.Push(plan, params)
}

// PushBatch pays the latency once for the whole batch — a batched push is one
// round trip (Section 5.3's cost model); the per-binding evaluation itself is
// local work at the wrapper.
func (s *delaySource) PushBatch(plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	return s.PushBatchContext(context.Background(), plan, bindings)
}

func (s *delaySource) PushBatchContext(ctx context.Context, plan algebra.Op, bindings []map[string]tab.Cell) ([]*tab.Tab, error) {
	time.Sleep(s.d)
	if bs, ok := s.Source.(algebra.BatchSource); ok {
		return bs.PushBatchContext(ctx, plan, bindings)
	}
	out := make([]*tab.Tab, len(bindings))
	for i, bd := range bindings {
		t, err := s.Source.Push(plan, bd)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// wireMediator deploys the Figure 2 scenario over real TCP with the given
// per-request source latency and returns a mediator whose sources are wire
// clients.
func wireMediator(b *testing.B, w *datagen.Workload, latency time.Duration) *mediator.Mediator {
	b.Helper()
	ow := o2wrap.New("o2artifact", w.DB)
	schema := ow.ExportSchema()
	ww := waiswrap.New("xmlartwork", datagen.NewWaisEngine(w.Works))
	exps := []wire.Exported{
		{Source: &delaySource{Source: ow, d: latency}, Interface: ow.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"artifacts": {Model: schema, Pattern: "Artifact"},
				"persons":   {Model: schema, Pattern: "Person"},
			}},
		{Source: &delaySource{Source: ww, d: latency}, Interface: ww.ExportInterface(),
			Structures: map[string]wire.StructureRef{
				"works": {Model: ww.ExportStructure(), Pattern: "Works"},
			}},
	}
	m := mediator.New()
	for _, exp := range exps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := wire.Serve(ln, exp)
		b.Cleanup(srv.Close)
		c, err := wire.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		iface, err := c.ImportInterface()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Connect(c, iface); err != nil {
			b.Fatal(err)
		}
		sts, err := c.ImportStructures()
		if err != nil {
			b.Fatal(err)
		}
		for doc, ref := range sts {
			m.ImportStructure(doc, ref.Model, ref.Pattern)
		}
	}
	m.RegisterFunc("contains", waiswrap.Contains)
	if err := m.LoadProgram(datagen.View1Src); err != nil {
		b.Fatal(err)
	}
	m.Assume("artifacts", "works", "$y > 1800")
	m.Assume("persons", "works", "$y > 1800")
	return m
}

// BenchmarkFig9Q2Parallel runs Q2's pushdown plan — a DJoin pushing one O₂
// sub-query per qualifying work — on the parallel engine against wire
// wrappers with a 2ms service latency. Serial evaluation pays the latency
// once per outer row; the engine overlaps up to `workers` rows. Rows and
// push counts are asserted identical to serial before timing.
func BenchmarkFig9Q2Parallel(b *testing.B) {
	const latency = 2 * time.Millisecond
	w := datagen.Generate(datagen.DefaultParams(1000))
	m := wireMediator(b, w, latency)
	serial, err := m.ExecuteContext(context.Background(), Q2, mediator.ExecOptions{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	if serial.Tab.Len() == 0 || serial.Stats.SourcePushes == 0 {
		b.Fatalf("degenerate fixture: %d rows, %d pushes", serial.Tab.Len(), serial.Stats.SourcePushes)
	}
	workers := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		workers = append(workers, g)
	}
	for _, n := range workers {
		opts := mediator.ExecOptions{Parallelism: n, Timeout: time.Minute}
		res, err := m.ExecuteContext(context.Background(), Q2, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Tab.Equal(serial.Tab) || res.Stats.SourcePushes != serial.Stats.SourcePushes {
			b.Fatalf("workers=%d diverges from serial: %d vs %d rows, %d vs %d pushes",
				n, res.Tab.Len(), serial.Tab.Len(), res.Stats.SourcePushes, serial.Stats.SourcePushes)
		}
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.ExecuteContext(context.Background(), Q2, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(serial.Stats.SourcePushes), "pushes")
		})
	}
}

// ---------------------------------------------------------------------------
// E16 — set-at-a-time information passing: batched DJoin pushdown + cache
// ---------------------------------------------------------------------------

// BenchmarkFig9Q2Batched compares Q2's pushdown DJoin under per-row
// information passing (one wire round trip per outer row), batched pushes
// (the plan ships once per chunk of distinct binding sets), and a warm
// wrapper-result cache (no round trips at all). Rows must be byte-identical
// and ordered across all paths; the batched path must cut round trips
// (Stats.SourcePushes) by at least 5×.
func BenchmarkFig9Q2Batched(b *testing.B) {
	const latency = 2 * time.Millisecond
	w := datagen.Generate(datagen.DefaultParams(1000))
	m := wireMediator(b, w, latency)
	ctx := context.Background()

	perRowOpts := mediator.ExecOptions{Parallelism: 1, PerRowDJoin: true}
	perRow, err := m.ExecuteContext(ctx, Q2, perRowOpts)
	if err != nil {
		b.Fatal(err)
	}
	batchOpts := mediator.ExecOptions{Parallelism: 1}
	batched, err := m.ExecuteContext(ctx, Q2, batchOpts)
	if err != nil {
		b.Fatal(err)
	}
	if !perRow.Tab.Equal(batched.Tab) {
		b.Fatalf("batched rows diverge from per-row:\n%s\nvs\n%s", batched.Tab, perRow.Tab)
	}
	if perRow.Stats.SourcePushes < 5*batched.Stats.SourcePushes {
		b.Fatalf("batching saves too little: per-row %d pushes, batched %d",
			perRow.Stats.SourcePushes, batched.Stats.SourcePushes)
	}
	parOpts := mediator.ExecOptions{Parallelism: 4, Timeout: time.Minute}
	par, err := m.ExecuteContext(ctx, Q2, parOpts)
	if err != nil {
		b.Fatal(err)
	}
	if !par.Tab.Equal(batched.Tab) || par.Stats.SourcePushes != batched.Stats.SourcePushes {
		b.Fatalf("parallel batched diverges: %d vs %d pushes", par.Stats.SourcePushes, batched.Stats.SourcePushes)
	}

	cases := []struct {
		name   string
		opts   mediator.ExecOptions
		pushes int
	}{
		{"PerRow", perRowOpts, perRow.Stats.SourcePushes},
		{"Batched", batchOpts, batched.Stats.SourcePushes},
		{"Batched/workers=4", parOpts, par.Stats.SourcePushes},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.ExecuteContext(ctx, Q2, c.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.pushes), "pushes")
		})
	}

	// Warm cache last: once installed it persists in the mediator.
	warmOpts := mediator.ExecOptions{Parallelism: 1, CacheSize: 1024}
	if _, err := m.ExecuteContext(ctx, Q2, warmOpts); err != nil {
		b.Fatal(err) // cold run fills the cache
	}
	warm, err := m.ExecuteContext(ctx, Q2, warmOpts)
	if err != nil {
		b.Fatal(err)
	}
	if !warm.Tab.Equal(batched.Tab) {
		b.Fatalf("warm-cache rows diverge")
	}
	if warm.Stats.CacheHits == 0 || warm.Stats.SourcePushes != 0 {
		b.Fatalf("warm cache: hits=%d pushes=%d, want >0 and 0", warm.Stats.CacheHits, warm.Stats.SourcePushes)
	}
	b.Run("WarmCache", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ExecuteContext(ctx, Q2, warmOpts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(warm.Stats.CacheHits), "cache-hits")
		b.ReportMetric(0, "pushes")
	})
}

// ---------------------------------------------------------------------------
// E11 — information passing crossover: bind join vs fetch-all join
// ---------------------------------------------------------------------------

func BenchmarkE11JoinCrossover(b *testing.B) {
	// Left side cardinality varies (the number of works surviving the
	// contains selection); the right side is the O₂ source. The bind join
	// (DJoin) queries O₂ once per left row with parameters; the fetch-all
	// join ships the whole pushed extent once and joins at the mediator.
	const n = 2000
	w := datagen.Generate(datagen.DefaultParams(n))
	o2Bind := func() algebra.Op {
		return &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
			`set[ *class[ artifact.tuple[ title: $t2, price: $p ] ] ]`)}
	}
	for _, k := range []int{1, 16, 256, 1024} {
		left := leftRows(w, k)
		b.Run(fmt.Sprintf("BindJoin/left=%d", k), func(b *testing.B) {
			plan := &algebra.DJoin{
				L: &algebra.Literal{T: left},
				R: &algebra.SourceQuery{Source: "o2artifact",
					Plan: &algebra.Select{From: o2Bind(), Pred: algebra.MustParseExpr(`$t2 = $t`)}},
			}
			runCrossover(b, plan, w)
		})
		b.Run(fmt.Sprintf("FetchAllJoin/left=%d", k), func(b *testing.B) {
			plan := &algebra.Join{
				L:    &algebra.Literal{T: left},
				R:    &algebra.SourceQuery{Source: "o2artifact", Plan: o2Bind()},
				Pred: algebra.MustParseExpr(`$t = $t2`),
			}
			runCrossover(b, plan, w)
		})
	}
}

func leftRows(w *datagen.Workload, k int) *tab.Tab {
	t := tab.New("$t")
	for i := 0; i < k && i < len(w.Works); i++ {
		title := w.Works[i].Child("title")
		t.Add(tab.AtomCell(data.String(title.Atom.S)))
	}
	return t
}

func runCrossover(b *testing.B, plan algebra.Op, w *datagen.Workload) {
	b.Helper()
	ctx := sourceCtx(w)
	res, err := plan.Eval(ctx)
	if err != nil {
		b.Fatal(err)
	}
	if res.Len() == 0 {
		b.Fatal("empty crossover result")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Eval(sourceCtx(w)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.Stats.TuplesShipped), "tuples-shipped")
}

// ---------------------------------------------------------------------------
// E12 — source indexes under pushdown (Section 5.3's associative access)
// ---------------------------------------------------------------------------

func BenchmarkE12SourceIndex(b *testing.B) {
	const n = 5000
	for _, indexed := range []bool{false, true} {
		name := "Scan"
		if indexed {
			name = "Indexed"
		}
		b.Run(fmt.Sprintf("%s/artifacts=%d", name, n), func(b *testing.B) {
			w := datagen.Generate(datagen.DefaultParams(n))
			if indexed {
				if err := w.DB.BuildIndex("Artifact", "title"); err != nil {
					b.Fatal(err)
				}
			}
			ow := o2wrap.New("o2artifact", w.DB)
			plan := &algebra.Select{
				From: &algebra.Bind{Doc: "artifacts", F: filter.MustParse(
					`set[ *class[ artifact.tuple[ title: $t, price: $p ] ] ]`)},
				Pred: algebra.MustParseExpr(`$t = "Painting 777"`),
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ow.Push(plan, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E14 — optimizer overhead (the "simple linear search strategy" of §6)
// ---------------------------------------------------------------------------

func BenchmarkE14OptimizerOverhead(b *testing.B) {
	m, _ := benchSetup(b, 100)
	for _, q := range []struct{ name, src string }{
		{"Q1", Q1},
		{"Q2", Q2},
	} {
		naive, err := m.Compose(q.src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Optimize(naive)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E18: tracing overhead
// ---------------------------------------------------------------------------

// BenchmarkTraceOverhead measures what per-operator tracing costs on Fig. 9's
// Q2 over live wire wrappers (no injected latency, so the mediator-side work
// dominates and any tracing cost is maximally visible). With Trace off, the
// only addition to the hot path is one nil check per operator evaluation —
// Off must stay within noise of the pre-observability baseline (the <2%
// acceptance bound on BenchmarkFig9Q2Batched); On prices the full span tree.
func BenchmarkTraceOverhead(b *testing.B) {
	w := datagen.Generate(datagen.DefaultParams(1000))
	m := wireMediator(b, w, 0)
	ctx := context.Background()

	off := mediator.ExecOptions{Parallelism: 1}
	on := mediator.ExecOptions{Parallelism: 1, Trace: true}
	plain, err := m.ExecuteContext(ctx, Q2, off)
	if err != nil {
		b.Fatal(err)
	}
	traced, err := m.ExecuteContext(ctx, Q2, on)
	if err != nil {
		b.Fatal(err)
	}
	if !plain.Tab.Equal(traced.Tab) {
		b.Fatal("tracing changed the result rows")
	}
	if traced.Trace == nil || traced.Trace.SpanCount() < 2 {
		b.Fatal("traced run collected no span tree")
	}
	spans := traced.Trace.SpanCount()

	b.Run("Off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ExecuteContext(ctx, Q2, off); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("On", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ExecuteContext(ctx, Q2, on); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spans), "spans")
	})
}

// BenchmarkTypeCheckOverhead measures what wire conformance checking costs on
// Fig. 9's Q2 over live wire wrappers: with ExecOptions.CheckTypes every row a
// wrapper ships is validated cell-by-cell against the operator's inferred
// pattern type (typecheck.CellConforms), so the On case prices one conformance
// walk per shipped cell plus the one-time plan inference. Off must stay within
// noise of the plain baseline — the only addition to the hot path is a nil
// check on Context.CheckWire per source result.
func BenchmarkTypeCheckOverhead(b *testing.B) {
	w := datagen.Generate(datagen.DefaultParams(1000))
	m := wireMediator(b, w, 0)
	ctx := context.Background()

	off := mediator.ExecOptions{Parallelism: 1}
	on := mediator.ExecOptions{Parallelism: 1, CheckTypes: true}
	plain, err := m.ExecuteContext(ctx, Q2, off)
	if err != nil {
		b.Fatal(err)
	}
	checked, err := m.ExecuteContext(ctx, Q2, on)
	if err != nil {
		b.Fatal(err)
	}
	if !plain.Tab.Equal(checked.Tab) {
		b.Fatal("conformance checking changed the result rows")
	}

	b.Run("Off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ExecuteContext(ctx, Q2, off); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("On", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.ExecuteContext(ctx, Q2, on); err != nil {
				b.Fatal(err)
			}
		}
	})
}
